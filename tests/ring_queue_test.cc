#include "stream/ring_queue.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dssj::stream {
namespace {

// ---------------------------------------------------------------------------
// SpscRingQueue
// ---------------------------------------------------------------------------

TEST(SpscRingQueueTest, FifoSingleThread) {
  SpscRingQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.Push(i);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop(), i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(SpscRingQueueTest, WraparoundAtTinyCapacities) {
  // Small capacities force the cursors around the ring thousands of times,
  // including the non-power-of-two capacities whose ring is rounded up.
  for (size_t cap : {1u, 2u, 3u, 5u}) {
    SpscRingQueue<int> q(cap);
    int next_out = 0;
    for (int i = 0; i < 4096; ++i) {
      q.Push(i);
      if (q.size() == cap) {
        while (q.size() > 0) EXPECT_EQ(q.Pop(), next_out++);
      }
    }
    while (q.size() > 0) EXPECT_EQ(q.Pop(), next_out++);
    EXPECT_EQ(next_out, 4096) << "capacity " << cap;
  }
}

TEST(SpscRingQueueTest, RandomizedBatchSizesPreserveOrderExactlyOnce) {
  constexpr int kItems = 50000;
  SpscRingQueue<int> q(16);
  std::thread producer([&q] {
    std::mt19937 rng(17);
    std::uniform_int_distribution<int> chunk(1, 19);
    int next = 0;
    while (next < kItems) {
      std::vector<int> batch;
      for (int k = chunk(rng); k > 0 && next < kItems; --k) batch.push_back(next++);
      q.PushBatch(&batch);
      ASSERT_TRUE(batch.empty()) << "open queue did not accept the whole batch";
    }
    q.Close();
  });

  std::mt19937 rng(23);
  std::uniform_int_distribution<int> want(1, 13);
  std::vector<int> got;
  std::vector<int> batch;
  while (q.PopBatch(&batch, static_cast<size_t>(want(rng))) > 0) {
    got.insert(got.end(), batch.begin(), batch.end());
    batch.clear();
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(got[i], i) << "lost, duplicated or reordered";
}

TEST(SpscRingQueueTest, CloseWhileFullUnblocksProducerAndKeepsAcceptedItems) {
  SpscRingQueue<int> q(1);
  EXPECT_EQ(q.Push(1), 1u);
  std::atomic<size_t> second_push{999};
  std::thread producer([&] { second_push.store(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(second_push.load(), 999u) << "push did not block at capacity";
  q.Close();
  producer.join();
  EXPECT_EQ(second_push.load(), 0u) << "close must reject the blocked push";
  int out = -1;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1) << "the accepted item must survive close";
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscRingQueueTest, CloseWhileEmptyUnblocksConsumer) {
  SpscRingQueue<int> q(4);
  std::atomic<size_t> popped{999};
  std::thread consumer([&] {
    std::vector<int> out;
    popped.store(q.PopBatch(&out, 8));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(popped.load(), 999u) << "pop did not block on empty";
  q.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 0u);
}

TEST(SpscRingQueueTest, PushBatchOnClosedQueueLeavesRemainder) {
  SpscRingQueue<int> q(8);
  q.Close();
  std::vector<int> batch = {1, 2, 3};
  EXPECT_EQ(q.PushBatch(&batch), 0u);
  EXPECT_EQ(batch.size(), 3u) << "closed queue must leave the unaccepted remainder";
}

TEST(SpscRingQueueTest, ShutdownRaceLosesNoAcceptedItems) {
  // The closed bit lives in the claim cursor, so "Push returned a depth" must
  // mean "the item is poppable" no matter where Close lands. Repeat the race
  // with close points spread across the producer's run.
  for (int round = 0; round < 30; ++round) {
    SpscRingQueue<int> q(4);
    std::atomic<uint64_t> accepted{0};
    std::thread producer([&] {
      for (int i = 0; i < 10000; ++i) {
        if (q.Push(i) == 0) break;
        accepted.fetch_add(1);
      }
    });
    std::vector<int> got;
    std::thread consumer([&] {
      std::vector<int> batch;
      while (q.PopBatch(&batch, 7) > 0) {
        got.insert(got.end(), batch.begin(), batch.end());
        batch.clear();
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    q.Close();
    producer.join();
    consumer.join();
    ASSERT_EQ(got.size(), accepted.load()) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], static_cast<int>(i));
  }
}

// ---------------------------------------------------------------------------
// RingQueue (MPMC)
// ---------------------------------------------------------------------------

TEST(RingQueueTest, WraparoundAtTinyCapacities) {
  for (size_t cap : {1u, 2u, 3u}) {
    RingQueue<int> q(cap);
    int next_out = 0;
    for (int i = 0; i < 4096; ++i) {
      q.Push(i);
      if (q.size() == cap) {
        while (q.size() > 0) EXPECT_EQ(q.Pop(), next_out++);
      }
    }
    while (q.size() > 0) EXPECT_EQ(q.Pop(), next_out++);
    EXPECT_EQ(next_out, 4096) << "capacity " << cap;
  }
}

TEST(RingQueueTest, MpmcStressDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20000;
  RingQueue<std::pair<int, int>> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push({p, i});
    });
  }
  std::mutex mu;
  std::map<int, std::vector<int>> received;  // producer -> sequence seen
  std::vector<std::thread> consumers;
  std::atomic<int> remaining{kProducers * kPerProducer};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (remaining.fetch_sub(1) > 0) {
        const auto [p, i] = q.Pop();
        std::lock_guard<std::mutex> lock(mu);
        received[p].push_back(i);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  size_t total = 0;
  for (auto& [p, seqs] : received) {
    total += seqs.size();
    std::sort(seqs.begin(), seqs.end());
    for (int i = 0; i < static_cast<int>(seqs.size()); ++i) {
      ASSERT_EQ(seqs[i], i) << "producer " << p << " lost or duplicated an item";
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
}

TEST(RingQueueTest, RandomizedBatchesPreservePerProducerFifo) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 15000;
  RingQueue<std::pair<int, int>> q(32);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::mt19937 rng(100 + p);
      std::uniform_int_distribution<int> chunk(1, 11);
      int next = 0;
      while (next < kPerProducer) {
        std::vector<std::pair<int, int>> batch;
        for (int k = chunk(rng); k > 0 && next < kPerProducer; --k) batch.push_back({p, next++});
        q.PushBatch(&batch);
        ASSERT_TRUE(batch.empty());
      }
    });
  }

  std::mt19937 rng(7);
  std::uniform_int_distribution<int> want(1, 9);
  std::map<int, int> next_expected;
  size_t total = 0;
  std::vector<std::pair<int, int>> batch;
  while (total < static_cast<size_t>(kProducers) * kPerProducer) {
    const size_t n = q.PopBatch(&batch, static_cast<size_t>(want(rng)));
    ASSERT_GT(n, 0u);
    for (const auto& [p, i] : batch) {
      ASSERT_EQ(i, next_expected[p]) << "producer " << p << " reordered";
      ++next_expected[p];
    }
    total += n;
    batch.clear();
  }
  for (auto& t : producers) t.join();
}

TEST(RingQueueTest, CloseWhileFullRaceLosesNoAcceptedItems) {
  for (int round = 0; round < 20; ++round) {
    RingQueue<int> q(4);
    constexpr int kProducers = 3;
    std::atomic<uint64_t> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) {
          if (q.Push(i) == 0) break;
          accepted.fetch_add(1);
        }
      });
    }
    std::vector<int> got;
    std::thread consumer([&] {
      std::vector<int> batch;
      while (q.PopBatch(&batch, 3) > 0) {
        got.insert(got.end(), batch.begin(), batch.end());
        batch.clear();
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
    q.Close();
    for (auto& t : producers) t.join();
    consumer.join();
    ASSERT_EQ(got.size(), accepted.load()) << "round " << round;
  }
}

TEST(RingQueueTest, CloseWhileEmptyRaceUnblocksAllConsumers) {
  for (int round = 0; round < 20; ++round) {
    RingQueue<int> q(8);
    std::atomic<int> done{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&] {
        std::vector<int> batch;
        while (q.PopBatch(&batch, 4) > 0) batch.clear();
        done.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
    q.Close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(done.load(), 3) << "round " << round;
  }
}

TEST(RingQueueTest, PushBatchOnClosedQueueLeavesRemainder) {
  RingQueue<int> q(8);
  q.Push(1);
  q.Close();
  std::vector<int> batch = {2, 3};
  EXPECT_EQ(q.PushBatch(&batch), 0u);
  EXPECT_EQ(batch.size(), 2u);
  int out = -1;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
}

TEST(RingQueueTest, DrainIsNonBlockingAndEmptiesTheQueue) {
  RingQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.Drain(&out), 10u);
  EXPECT_EQ(q.size(), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  out.clear();
  EXPECT_EQ(q.Drain(&out), 0u) << "drain on empty must not block";
}

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

TEST(RingQueueHealthTest, GaugesMatchTheMutexQueueSemantics) {
  for (QueueImpl impl : {QueueImpl::kRing, QueueImpl::kMutex}) {
    for (bool spsc : {true, false}) {
      auto q = MakeQueue<int>(impl, 4, spsc);
      q->EnableHealthTracking();
      q->Push(1);
      q->Push(2);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      QueueHealth h = q->Health();
      EXPECT_EQ(h.depth, 2u);
      EXPECT_EQ(h.capacity, 4u);
      EXPECT_GT(h.depth_ewma, 0.0);
      EXPECT_GT(h.oldest_age_micros, 0);
      q->Push(3);
      q->Push(4);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      h = q->Health();
      EXPECT_GT(h.at_capacity_stretch_micros, 0) << "full queue must accrue capacity time";
      int out = 0;
      q->TryPop(&out);
      h = q->Health();
      EXPECT_EQ(h.depth, 3u);
      EXPECT_GT(h.time_at_capacity_micros, 0);
    }
  }
}

TEST(MakeQueueTest, FactorySelectsTheRightImplementationPerLink) {
  auto spsc = MakeQueue<int>(QueueImpl::kRing, 8, /*spsc_safe=*/true);
  auto mpmc = MakeQueue<int>(QueueImpl::kRing, 8, /*spsc_safe=*/false);
  auto mutex_q = MakeQueue<int>(QueueImpl::kMutex, 8, /*spsc_safe=*/true);
  EXPECT_NE(dynamic_cast<SpscRingQueue<int>*>(spsc.get()), nullptr);
  EXPECT_NE(dynamic_cast<RingQueue<int>*>(mpmc.get()), nullptr);
  EXPECT_NE(dynamic_cast<BoundedQueue<int>*>(mutex_q.get()), nullptr);
}

TEST(QueueImplNameTest, RoundTrips) {
  QueueImpl impl = QueueImpl::kMutex;
  EXPECT_TRUE(ParseQueueImpl("ring", &impl));
  EXPECT_EQ(impl, QueueImpl::kRing);
  EXPECT_EQ(QueueImplName(impl), std::string("ring"));
  EXPECT_TRUE(ParseQueueImpl("mutex", &impl));
  EXPECT_EQ(impl, QueueImpl::kMutex);
  EXPECT_EQ(QueueImplName(impl), std::string("mutex"));
  EXPECT_FALSE(ParseQueueImpl("spinlock", &impl));
}

}  // namespace
}  // namespace dssj::stream
