#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/record.h"
#include "text/token_dictionary.h"
#include "text/tokenizer.h"

namespace dssj {
namespace {

// --- Record -----------------------------------------------------------------

TEST(RecordTest, NormalizeSortsAndDedups) {
  std::vector<TokenId> tokens{5, 1, 5, 3, 1};
  NormalizeTokens(tokens);
  EXPECT_EQ(tokens, (std::vector<TokenId>{1, 3, 5}));
}

TEST(RecordTest, OverlapSize) {
  const auto overlap = [](std::vector<TokenId> a, std::vector<TokenId> b) {
    return OverlapSize(a, b);
  };
  EXPECT_EQ(overlap({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(overlap({1, 2, 3}, {4, 5}), 0u);
  EXPECT_EQ(overlap({}, {1}), 0u);
  EXPECT_EQ(overlap({1, 2, 3}, {1, 2, 3}), 3u);
}

TEST(RecordTest, MakeRecordNormalizesAndStamps) {
  const RecordPtr r = MakeRecord(7, 9, {4, 4, 1}, 123);
  EXPECT_EQ(r->id, 7u);
  EXPECT_EQ(r->seq, 9u);
  EXPECT_EQ(r->timestamp, 123);
  EXPECT_EQ(r->tokens, (std::vector<TokenId>{1, 4}));
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->SerializedBytes(), 24u + 8u);
}

// --- Tokenizers ---------------------------------------------------------------

TEST(WordTokenizerTest, LowercasesAndSplits) {
  WordTokenizer t;
  EXPECT_EQ(t.Tokenize("Data, Engineering!  42"),
            (std::vector<std::string>{"data", "engineering", "42"}));
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  ,.!  ").empty());
  EXPECT_EQ(t.Tokenize("a-b_c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(QGramTokenizerTest, SlidingGrams) {
  QGramTokenizer t(3);
  EXPECT_EQ(t.Tokenize("abcde"),
            (std::vector<std::string>{"abc", "bcd", "cde"}));
  // Whitespace collapsed, case folded.
  EXPECT_EQ(t.Tokenize("A  b"), (std::vector<std::string>{"a b"}));
  // Shorter than q: whole string.
  EXPECT_EQ(t.Tokenize("ab"), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(t.Tokenize("   ").empty());
}

// --- TokenDictionary ----------------------------------------------------------

TEST(TokenDictionaryTest, AssignsDenseIdsFirstSeen) {
  TokenDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(dict.GetOrAdd("beta"), 1u);
  EXPECT_EQ(dict.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.TokenString(1), "beta");
  EXPECT_EQ(dict.Find("beta"), 1u);
  EXPECT_EQ(dict.Find("gamma"), TokenDictionary::kNoToken);
}

TEST(TokenDictionaryTest, ReorderByFrequencyPutsRareFirst) {
  TokenDictionary dict;
  const TokenId common = dict.GetOrAdd("common");
  const TokenId rare = dict.GetOrAdd("rare");
  const TokenId mid = dict.GetOrAdd("mid");
  for (int i = 0; i < 10; ++i) dict.CountDocumentOccurrence(common);
  for (int i = 0; i < 5; ++i) dict.CountDocumentOccurrence(mid);
  dict.CountDocumentOccurrence(rare);
  const auto remap = dict.ReorderByFrequency();
  EXPECT_EQ(remap[rare], 0u);
  EXPECT_EQ(remap[mid], 1u);
  EXPECT_EQ(remap[common], 2u);
  dict.ApplyRemap(remap);
  EXPECT_EQ(dict.TokenString(0), "rare");
  EXPECT_EQ(dict.Find("common"), 2u);
  EXPECT_EQ(dict.DocumentFrequency(0), 1u);
}

TEST(TokenDictionaryTest, RemapTokensResorts) {
  std::vector<TokenId> remap{2, 0, 1};  // old 0->2, 1->0, 2->1
  std::vector<TokenId> tokens{0, 2};
  RemapTokens(remap, tokens);
  EXPECT_EQ(tokens, (std::vector<TokenId>{1, 2}));
}

// --- Corpus ---------------------------------------------------------------------

TEST(CorpusTest, BuildFromLinesProducesFrequencyOrderedRecords) {
  const std::vector<std::string> lines{
      "the quick fox",
      "the lazy dog",
      "the quick dog",
  };
  WordTokenizer tokenizer;
  const Corpus corpus = BuildCorpusFromLines(lines, tokenizer);
  ASSERT_EQ(corpus.records.size(), 3u);
  EXPECT_EQ(corpus.dictionary.size(), 5u);
  // "the" occurs in all 3 documents → highest id.
  const TokenId the_id = corpus.dictionary.Find("the");
  EXPECT_EQ(the_id, 4u);
  // Every record's tokens ascend and end with "the".
  for (const RecordPtr& r : corpus.records) {
    ASSERT_EQ(r->size(), 3u);
    EXPECT_TRUE(std::is_sorted(r->tokens.begin(), r->tokens.end()));
    EXPECT_EQ(r->tokens.back(), the_id);
  }
  // seq == position.
  EXPECT_EQ(corpus.records[2]->seq, 2u);
}

TEST(CorpusTest, EmptyLinesYieldEmptyRecords) {
  WordTokenizer tokenizer;
  const Corpus corpus = BuildCorpusFromLines({"a b", "", "c"}, tokenizer);
  ASSERT_EQ(corpus.records.size(), 3u);
  EXPECT_EQ(corpus.records[1]->size(), 0u);
}

TEST(CorpusTest, StatsSummarizeCollection) {
  WordTokenizer tokenizer;
  const Corpus corpus = BuildCorpusFromLines(
      {"a b c", "a b", "a a a", "d e f g"}, tokenizer);
  const CorpusStats stats = ComputeCorpusStats(corpus.records);
  EXPECT_EQ(stats.num_records, 4u);
  EXPECT_EQ(stats.vocabulary_size, 7u);
  EXPECT_EQ(stats.min_length, 1u);  // "a a a" collapses to {a}
  EXPECT_EQ(stats.max_length, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_length, (3 + 2 + 1 + 4) / 4.0);
  EXPECT_GT(stats.top1pct_token_mass, 0.0);
}

TEST(CorpusTest, EmptyStats) {
  const CorpusStats stats = ComputeCorpusStats({});
  EXPECT_EQ(stats.num_records, 0u);
  EXPECT_EQ(stats.min_length, 0u);
}

TEST(CorpusTest, BinaryRoundTrip) {
  WordTokenizer tokenizer;
  const Corpus corpus =
      BuildCorpusFromLines({"alpha beta", "", "gamma delta epsilon"}, tokenizer);
  const std::string path = ::testing::TempDir() + "/records_roundtrip.bin";
  ASSERT_TRUE(SaveRecordsBinary(path, corpus.records).ok());
  auto loaded = LoadRecordsBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), corpus.records.size());
  for (size_t i = 0; i < corpus.records.size(); ++i) {
    EXPECT_EQ(loaded.value()[i]->id, corpus.records[i]->id);
    EXPECT_EQ(loaded.value()[i]->seq, corpus.records[i]->seq);
    EXPECT_EQ(loaded.value()[i]->tokens, corpus.records[i]->tokens);
  }
  std::remove(path.c_str());
}

TEST(CorpusTest, LoadErrorsAreStatuses) {
  EXPECT_EQ(LoadRecordsBinary("/nonexistent/path.bin").status().code(),
            StatusCode::kNotFound);
  WordTokenizer tokenizer;
  EXPECT_EQ(LoadCorpusFromFile("/nonexistent/corpus.txt", tokenizer).status().code(),
            StatusCode::kNotFound);
  // Corrupt magic.
  const std::string path = ::testing::TempDir() + "/bad_magic.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("nope", 1, 4, f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadRecordsBinary(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(WordTokenizerTest, CapsPathologicalTokenRuns) {
  WordTokenizer t;
  const std::string run(2 * WordTokenizer::kMaxTokenBytes + 7, 'x');
  const std::vector<std::string> tokens = t.Tokenize(run);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].size(), WordTokenizer::kMaxTokenBytes);
  EXPECT_EQ(tokens[1].size(), WordTokenizer::kMaxTokenBytes);
  EXPECT_EQ(tokens[2].size(), 7u);
}

TEST(CorpusTest, IsValidUtf8) {
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80"));
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_FALSE(IsValidUtf8("\xff"));                  // not a lead byte
  EXPECT_FALSE(IsValidUtf8("\x80"));                  // stray continuation
  EXPECT_FALSE(IsValidUtf8("\xc3"));                  // truncated sequence
  EXPECT_FALSE(IsValidUtf8("\xc0\xaf"));              // overlong 2-byte
  EXPECT_FALSE(IsValidUtf8("\xe0\x80\xaf"));          // overlong 3-byte
  EXPECT_FALSE(IsValidUtf8("\xed\xa0\x80"));          // UTF-16 surrogate
  EXPECT_FALSE(IsValidUtf8("\xf4\x90\x80\x80"));      // beyond U+10FFFF
}

TEST(CorpusTest, MalformedFileIsSanitizedAndCounted) {
  const std::string path = ::testing::TempDir() + "/malformed_corpus.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("clean line\n", f);
    std::fputs("bad \xff\xfe utf8\n", f);  // invalid bytes mid-line
    std::fputs("\n", f);                   // empty record
    const std::string overlong(200, 'y');
    std::fputs((overlong + " trailing\n").c_str(), f);
    std::fclose(f);
  }
  WordTokenizer tokenizer;
  CorpusOptions options;
  options.max_line_bytes = 100;
  auto corpus = LoadCorpusFromFile(path, tokenizer, options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus.value().records.size(), 4u);
  EXPECT_EQ(corpus.value().hygiene.invalid_utf8_lines, 1u);
  EXPECT_EQ(corpus.value().hygiene.overlong_lines, 1u);
  EXPECT_EQ(corpus.value().hygiene.empty_records, 1u);
  // The invalid bytes became separators: "bad" and "utf8" survive.
  EXPECT_EQ(corpus.value().records[1]->size(), 2u);
  // The overlong line was truncated to one 100-byte token run.
  EXPECT_EQ(corpus.value().records[3]->size(), 1u);

  // Strict mode fails fast with a line-numbered status.
  options.strict = true;
  auto strict = LoadCorpusFromFile(path, tokenizer, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CorpusTest, TruncationMidUtf8SequenceIsRepaired) {
  const std::string path = ::testing::TempDir() + "/truncated_utf8.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // 9 bytes of ascii then a 2-byte sequence straddling the 10-byte cap.
    std::fputs("aaaa bbbb\xc3\xa9 tail\n", f);
    std::fclose(f);
  }
  WordTokenizer tokenizer;
  CorpusOptions options;
  options.max_line_bytes = 10;
  auto corpus = LoadCorpusFromFile(path, tokenizer, options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus.value().hygiene.overlong_lines, 1u);
  EXPECT_EQ(corpus.value().hygiene.invalid_utf8_lines, 1u);
  ASSERT_EQ(corpus.value().records.size(), 1u);
  EXPECT_EQ(corpus.value().records[0]->size(), 2u);  // "aaaa", "bbbb"
  std::remove(path.c_str());
}

TEST(CorpusTest, FileRoundTripThroughLoadCorpusFromFile) {
  const std::string path = ::testing::TempDir() + "/corpus_lines.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("hello world\nhello again\n", f);
    std::fclose(f);
  }
  WordTokenizer tokenizer;
  auto corpus = LoadCorpusFromFile(path, tokenizer);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus.value().records.size(), 2u);
  EXPECT_EQ(corpus.value().dictionary.size(), 3u);
  std::remove(path.c_str());
}

// --- Sharded front-end loading (LoadCorpusFromFileSharded) ---------------

/// Deterministic messy corpus: duplicates, empty lines, punctuation, an
/// invalid-UTF-8 line, an overlong line, and no trailing newline — the
/// cases where a sharded scan could diverge from the serial one.
std::string WriteMessyCorpus(const std::string& name, bool trailing_newline) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 500; ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const int words = static_cast<int>(rng >> 60);
    for (int w = 0; w < words; ++w) {
      std::fprintf(f, "word%llu ",
                   static_cast<unsigned long long>((rng >> (w * 4)) % 97));
    }
    if (i % 31 == 7) std::fputs("\xff\xfe", f);          // invalid UTF-8
    if (i % 47 == 11) std::fputs(std::string(300, 'z').c_str(), f);  // overlong
    if (i % 13 == 5) std::fputs("Punct,u-ation!", f);
    if (i != 499 || trailing_newline) std::fputs("\n", f);
  }
  std::fclose(f);
  return path;
}

void ExpectCorpusIdentical(const Corpus& a, const Corpus& b, const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i]->id, b.records[i]->id) << label << " record " << i;
    EXPECT_EQ(a.records[i]->seq, b.records[i]->seq) << label << " record " << i;
    ASSERT_EQ(a.records[i]->tokens, b.records[i]->tokens) << label << " record " << i;
  }
  ASSERT_EQ(a.dictionary.size(), b.dictionary.size()) << label;
  for (TokenId id = 0; id < a.dictionary.size(); ++id) {
    EXPECT_EQ(a.dictionary.TokenString(id), b.dictionary.TokenString(id)) << label;
    EXPECT_EQ(a.dictionary.DocumentFrequency(id), b.dictionary.DocumentFrequency(id))
        << label;
  }
  EXPECT_EQ(a.hygiene.overlong_lines, b.hygiene.overlong_lines) << label;
  EXPECT_EQ(a.hygiene.invalid_utf8_lines, b.hygiene.invalid_utf8_lines) << label;
  EXPECT_EQ(a.hygiene.empty_records, b.hygiene.empty_records) << label;
}

TEST(ShardedCorpusTest, ByteIdenticalToSerialLoadForEveryLaneCount) {
  for (bool trailing : {true, false}) {
    const std::string path = WriteMessyCorpus(
        trailing ? "sharded_nl.txt" : "sharded_nonl.txt", trailing);
    WordTokenizer tokenizer;
    CorpusOptions options;
    options.max_line_bytes = 200;
    auto serial = LoadCorpusFromFile(path, tokenizer, options);
    ASSERT_TRUE(serial.ok());
    for (int lanes : {1, 2, 3, 4, 7}) {
      auto sharded = LoadCorpusFromFileSharded(path, tokenizer, lanes, options);
      ASSERT_TRUE(sharded.ok()) << "lanes=" << lanes;
      ExpectCorpusIdentical(serial.value(), sharded.value(),
                            "lanes=" + std::to_string(lanes) +
                                (trailing ? " (trailing \\n)" : " (no trailing \\n)"));
    }
    std::remove(path.c_str());
  }
}

TEST(ShardedCorpusTest, StrictModeErrorsMatchSerialLoad) {
  const std::string path = WriteMessyCorpus("sharded_strict.txt", true);
  WordTokenizer tokenizer;
  CorpusOptions options;
  options.max_line_bytes = 200;
  options.strict = true;
  auto serial = LoadCorpusFromFile(path, tokenizer, options);
  ASSERT_FALSE(serial.ok());
  for (int lanes : {1, 3, 5}) {
    auto sharded = LoadCorpusFromFileSharded(path, tokenizer, lanes, options);
    ASSERT_FALSE(sharded.ok()) << "lanes=" << lanes;
    EXPECT_EQ(sharded.status().code(), serial.status().code()) << "lanes=" << lanes;
    // Same first malformed line, same global line number, same reason.
    EXPECT_EQ(sharded.status().message(), serial.status().message()) << "lanes=" << lanes;
  }
  std::remove(path.c_str());
}

TEST(ShardedCorpusTest, ShardLineRangesConcatenateAndAlign) {
  const std::string data = "one\ntwo\nthree\nfour\nfive\nsix\nseven no newline";
  for (int shards : {1, 2, 3, 5, 20}) {
    const auto ranges = ShardLineRanges(data, shards);
    ASSERT_EQ(ranges.size(), static_cast<size_t>(shards));
    EXPECT_EQ(ranges.front().first, 0u);
    EXPECT_EQ(ranges.back().second, data.size());
    for (size_t s = 0; s < ranges.size(); ++s) {
      EXPECT_LE(ranges[s].first, ranges[s].second);
      if (s > 0) EXPECT_EQ(ranges[s].first, ranges[s - 1].second);
      // Every non-degenerate boundary starts right after a newline.
      const size_t start = ranges[s].first;
      if (start > 0 && start < data.size()) EXPECT_EQ(data[start - 1], '\n');
    }
  }
  EXPECT_TRUE(ShardLineRanges("", 4).size() == 4u);
}

// The SIMD classify pass must agree with the scalar definition on every
// byte value, including the sign-bit range and chunk boundaries.
TEST(WordTokenizerTest, WideClassifyMatchesScalarReference) {
  WordTokenizer tokenizer;
  // Reference: the documented semantics, written scalar.
  const auto reference = [](std::string_view text) {
    std::vector<std::string> out;
    std::string cur;
    for (unsigned char c : text) {
      const bool tok = (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') ||
                       (c >= 'a' && c <= 'z');
      if (tok) {
        if (cur.size() == WordTokenizer::kMaxTokenBytes) {
          out.push_back(cur);
          cur.clear();
        }
        cur.push_back((c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32)
                                             : static_cast<char>(c));
      } else if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  };
  // All 256 byte values straddling 16-byte chunk boundaries.
  std::string all;
  for (int c = 0; c < 256; ++c) {
    all.push_back(static_cast<char>(c));
    all.push_back(static_cast<char>(255 - c));
  }
  uint64_t rng = 12345;
  std::vector<std::string> cases = {all, "", "a", "Hello, World!", std::string(40, 'Q')};
  for (int i = 0; i < 200; ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    std::string s;
    const size_t len = (rng >> 48) % 70;
    for (size_t k = 0; k < len; ++k) s.push_back(static_cast<char>((rng >> (k % 56)) & 0xff));
    cases.push_back(std::move(s));
  }
  for (const std::string& text : cases) {
    EXPECT_EQ(tokenizer.Tokenize(text), reference(text)) << "input bytes: " << text.size();
  }
}

}  // namespace
}  // namespace dssj
