// Elastic scaling and live state migration (docs/INTERNALS.md §12): the
// migration blob codec must reject every corruption cleanly, and any
// schedule of live migrations — alone, chained, racing kills, or driven by
// the elastic controller — must leave the result set byte-identical to an
// unmigrated run. The MigrationScenario fixture mirrors FaultScenario from
// fault_recovery_test.cc: configure a join, attach a schedule, compare
// against the clean run.

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_topology.h"
#include "core/repartition.h"
#include "net/transport.h"
#include "stream/fault.h"
#include "stream/migration.h"
#include "stream/topology.h"
#include "workload/generator.h"

namespace dssj {
namespace {

// --- Blob codec robustness ----------------------------------------------

stream::MigrationState SampleState() {
  stream::MigrationState st;
  st.task_id = 7;
  st.executed_total = 123456789;
  st.remaining_eos = 3;
  st.has_bolt_state = true;
  st.bolt_state = std::string("hello\0world", 11);
  st.rr = {5, 0, 9, 1ull << 40};
  st.emitted = {{2, 10}, {4, 0}, {9, 1ull << 33}};
  st.next_seq = {{1, 7}, {3, 1}};
  return st;
}

TEST(MigrationBlobTest, RoundtripPreservesEveryField) {
  const stream::MigrationState st = SampleState();
  std::string blob;
  stream::EncodeMigrationState(st, &blob);
  stream::MigrationState out;
  const Status status = stream::DecodeMigrationState(blob.data(), blob.size(), &out);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(out.task_id, st.task_id);
  EXPECT_EQ(out.executed_total, st.executed_total);
  EXPECT_EQ(out.remaining_eos, st.remaining_eos);
  EXPECT_EQ(out.has_bolt_state, st.has_bolt_state);
  EXPECT_EQ(out.bolt_state, st.bolt_state);
  EXPECT_EQ(out.rr, st.rr);
  EXPECT_EQ(out.emitted, st.emitted);
  EXPECT_EQ(out.next_seq, st.next_seq);
}

TEST(MigrationBlobTest, EveryTruncationIsRejected) {
  std::string blob;
  stream::EncodeMigrationState(SampleState(), &blob);
  for (size_t len = 0; len < blob.size(); ++len) {
    stream::MigrationState out;
    const Status status = stream::DecodeMigrationState(blob.data(), len, &out);
    EXPECT_FALSE(status.ok()) << "truncation to " << len << " bytes was accepted";
  }
}

TEST(MigrationBlobTest, EverySingleBitFlipIsRejected) {
  std::string blob;
  stream::EncodeMigrationState(SampleState(), &blob);
  for (size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = blob;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      stream::MigrationState out;
      const Status status = stream::DecodeMigrationState(corrupt.data(), corrupt.size(), &out);
      EXPECT_FALSE(status.ok()) << "bit " << bit << " of byte " << i << " accepted";
    }
  }
}

TEST(MigrationBlobTest, TrailingBytesAreRejected) {
  std::string blob;
  stream::EncodeMigrationState(SampleState(), &blob);
  blob.push_back('\0');
  stream::MigrationState out;
  EXPECT_FALSE(stream::DecodeMigrationState(blob.data(), blob.size(), &out).ok());
}

TEST(MigrationBlobTest, EmptyAndGarbageAreRejected) {
  stream::MigrationState out;
  EXPECT_FALSE(stream::DecodeMigrationState("", 0, &out).ok());
  const std::string garbage(64, '\x5a');
  EXPECT_FALSE(stream::DecodeMigrationState(garbage.data(), garbage.size(), &out).ok());
}

// --- Worker-migration planner -------------------------------------------

TEST(PlanWorkerMigrationsTest, BalancedPlacementYieldsNoMoves) {
  const std::vector<double> load = {10, 10, 10, 10};
  const std::vector<int> cur = {0, 1, 0, 1};
  EXPECT_TRUE(PlanWorkerMigrations(load, cur, 2, 0.5).empty());
}

TEST(PlanWorkerMigrationsTest, ShrinkEvacuatesInactiveWorkers) {
  const std::vector<double> load = {10, 10, 10, 10};
  const std::vector<int> cur = {0, 1, 2, 3};
  const auto moves = PlanWorkerMigrations(load, cur, 2, 0.5);
  ASSERT_EQ(moves.size(), 2u);
  for (const WorkerMove& mv : moves) {
    EXPECT_TRUE(mv.task_index == 2 || mv.task_index == 3);
    EXPECT_LT(mv.target_worker, 2);
  }
  // Deterministic LPT: both active workers end with one evictee each.
  EXPECT_NE(moves[0].target_worker, moves[1].target_worker);
}

TEST(PlanWorkerMigrationsTest, GrowRebalancesOntoFreedWorkers) {
  const std::vector<double> load = {10, 10, 10, 10};
  const std::vector<int> cur = {0, 0, 0, 0};  // all packed on worker 0
  const auto moves = PlanWorkerMigrations(load, cur, 4, 0.25);
  EXPECT_EQ(moves.size(), 3u);  // bottleneck 40 vs mean 10: spread out
  std::vector<int> assigned = cur;
  for (const WorkerMove& mv : moves) assigned[mv.task_index] = mv.target_worker;
  std::sort(assigned.begin(), assigned.end());
  EXPECT_EQ(assigned, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PlanWorkerMigrationsTest, ToleratedImbalanceStaysPut) {
  const std::vector<double> load = {12, 10};
  const std::vector<int> cur = {0, 1};
  // Bottleneck 12 <= (1 + 0.5) * mean 11: inside the threshold.
  EXPECT_TRUE(PlanWorkerMigrations(load, cur, 2, 0.5).empty());
}

// --- Substrate-level API statuses ---------------------------------------

class IntSpout : public stream::Spout {
 public:
  explicit IntSpout(int64_t n) : n_(n) {}
  bool NextTuple(stream::OutputCollector& out) override {
    if (next_ >= n_) return false;
    out.Emit(stream::MakeTuple(next_++));
    return true;
  }

 private:
  int64_t n_;
  int64_t next_ = 0;
};

class NullBolt : public stream::Bolt {
 public:
  void Execute(stream::Tuple /*tuple*/, stream::OutputCollector& /*out*/) override {}
};

TEST(MigrateTaskApiTest, RejectsWhenNotElastic) {
  stream::TopologyBuilder b;
  b.SetNumWorkers(2);
  b.SetSpout("src", [] { return std::make_unique<IntSpout>(50); });
  b.SetBolt("sink", [] { return std::make_unique<NullBolt>(); }, 2).ShuffleGrouping("src");
  auto topo = b.Build();
  topo->Run();
  EXPECT_EQ(topo->MigrateTask("sink", 0, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(topo->ok());
}

TEST(MigrateTaskApiTest, ErrorStatusPerFailureMode) {
  stream::TopologyBuilder b;
  b.SetNumWorkers(2).SetElastic(true);
  b.SetSpout("src", [] { return std::make_unique<IntSpout>(50); });
  b.SetBolt("sink", [] { return std::make_unique<NullBolt>(); }, 2).ShuffleGrouping("src");
  auto topo = b.Build();
  // Before Submit: elastic but not running yet.
  EXPECT_EQ(topo->MigrateTask("sink", 0, 1).code(), StatusCode::kFailedPrecondition);
  topo->Run();
  EXPECT_EQ(topo->MigrateTask("nope", 0, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(topo->MigrateTask("sink", 7, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(topo->MigrateTask("src", 0, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(topo->MigrateTask("sink", 0, 9).code(), StatusCode::kOutOfRange);
  // Same-worker migration is a no-op success even after the run.
  EXPECT_TRUE(topo->MigrateTask("sink", 0, 0).ok());
  // A real move after the stream ended: the task is gone.
  EXPECT_EQ(topo->MigrateTask("sink", 0, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(topo->ok());
  EXPECT_EQ(topo->TaskWorker("sink", 0), 0);
  EXPECT_EQ(topo->TaskWorker("sink", 1), 1);
}

// --- Exactness under scheduled migrations (join level) ------------------

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  options.timestamp_step_us = 1000;
  return WorkloadGenerator(options).Generate(n);
}

/// Harness: run the join once clean (static placement, no migrations) and
/// once with an elastic schedule; the elastic run must produce the exact
/// clean result set. `expect_migrations` asserts the schedule actually
/// moved state.
class MigrationScenario : public ::testing::Test {
 protected:
  MigrationScenario() {
    stream_ = MakeStream(1311, 900);
    options_.sim = SimilaritySpec(SimilarityFunction::kJaccard, 750);
    options_.num_joiners = 3;
    options_.collect_results = true;
    options_.length_partition = PlanLengthPartition(stream_, options_.sim, options_.num_joiners,
                                                    PartitionMethod::kLoadAwareGreedy);
    options_.supervision.initial_backoff_micros = 50;  // keep tests fast
    options_.supervision.max_backoff_micros = 1000;
  }

  DistributedJoinResult RunClean() {
    DistributedJoinOptions clean = options_;
    clean.supervise = false;
    clean.elastic = false;
    clean.fault_script.clear();
    DistributedJoinResult result = RunDistributedJoin(stream_, clean);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.migrations, 0u);
    return result;
  }

  DistributedJoinResult RunScheduled(const std::string& script) {
    DistributedJoinOptions elastic = options_;
    elastic.fault_script = script;
    // Pace the source so scheduled seq points land mid-stream: unpaced, the
    // 900-record stream drains in a few ms and late actions race stream end
    // (a benign no-op in production, but these tests assert the actions
    // actually fired). Pacing never changes the result set.
    if (elastic.arrival_rate_per_sec == 0.0) elastic.arrival_rate_per_sec = 25'000;
    return RunDistributedJoin(stream_, elastic);
  }

  void ExpectExact(const std::string& script, uint64_t expect_migrations) {
    const DistributedJoinResult clean = RunClean();
    const DistributedJoinResult elastic = RunScheduled(script);
    ASSERT_TRUE(elastic.ok) << elastic.failure_message;
    EXPECT_EQ(elastic.migrations, expect_migrations) << "script: " << script;
    if (expect_migrations > 0) {
      EXPECT_GT(elastic.migration_bytes, 0u);
    }
    EXPECT_EQ(elastic.result_count, clean.result_count);
    const auto expect = Canonical(clean.pairs);
    const auto got = Canonical(elastic.pairs);
    ASSERT_EQ(got.size(), expect.size()) << "script: " << script;
    EXPECT_EQ(got, expect) << "migrated result set diverged; script: " << script;
    EXPECT_GT(expect.size(), 0u) << "vacuous test stream";
  }

  std::vector<RecordPtr> stream_;
  DistributedJoinOptions options_;
};

TEST_F(MigrationScenario, SingleMigrationIsExact) {
  ExpectExact("migrate:joiner:1->2@300", 1);
}

TEST_F(MigrationScenario, MigrationChainThereAndBackIsExact) {
  ExpectExact("migrate:joiner:0->1@200; migrate:joiner:0->2@400; migrate:joiner:0->0@600", 3);
}

TEST_F(MigrationScenario, NoOpAndDuplicateTargetsAreExact) {
  // First statement targets the task's own worker (no-op); the repeated
  // move finds the task already at its target the second time.
  ExpectExact("migrate:joiner:1->1@150; migrate:joiner:1->2@300; migrate:joiner:1->2@500", 1);
}

TEST_F(MigrationScenario, MigrationWithBundleJoinerIsExact) {
  options_.local = LocalAlgorithm::kBundle;
  ExpectExact("migrate:joiner:2->0@250", 1);
}

TEST_F(MigrationScenario, KillFlaggedBeforeMigrationAtSameProgress) {
  // The crash lands inside the migration window: the task recovers from its
  // checkpoint first, then freezes and moves.
  options_.supervision.checkpoint_interval = 64;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult elastic =
      RunScheduled("kill_worker:1@200; migrate:joiner:1->2@200");
  ASSERT_TRUE(elastic.ok) << elastic.failure_message;
  EXPECT_EQ(elastic.migrations, 1u);
  EXPECT_GT(elastic.restarts, 0u);
  EXPECT_EQ(Canonical(elastic.pairs), Canonical(clean.pairs));
}

TEST_F(MigrationScenario, KillAfterMigrationLandsOnMovedTask) {
  // joiner 1 moves to worker 2 at 250, then worker 2 is killed at 500: the
  // kill must crash the *migrated* incarnation and recover exactly.
  options_.supervision.checkpoint_interval = 64;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult elastic =
      RunScheduled("migrate:joiner:1->2@250; kill_worker:2@500");
  ASSERT_TRUE(elastic.ok) << elastic.failure_message;
  EXPECT_EQ(elastic.migrations, 1u);
  EXPECT_GT(elastic.restarts, 0u);
  EXPECT_EQ(Canonical(elastic.pairs), Canonical(clean.pairs));
}

TEST_F(MigrationScenario, TaskKillRacingMigrationIsExact) {
  // Per-task kill (executed-count trigger) interleaving with a migration of
  // the same task at a nearby point.
  options_.supervision.checkpoint_interval = 32;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult elastic =
      RunScheduled("kill:joiner:0@120; migrate:joiner:0->1@300; kill:joiner:0@260");
  ASSERT_TRUE(elastic.ok) << elastic.failure_message;
  EXPECT_EQ(elastic.migrations, 1u);
  EXPECT_GE(elastic.restarts, 2u);
  EXPECT_EQ(Canonical(elastic.pairs), Canonical(clean.pairs));
}

TEST_F(MigrationScenario, WatchdogToleratesQuiescedFreeze) {
  // The freeze is held far past the stall timeout under fail_fast: without
  // quiesce-awareness the watchdog would fail the run while producers are
  // parked and no task progresses.
  options_.stall_timeout_micros = 40'000;
  options_.watchdog_fail_fast = true;
  options_.supervision.migration_freeze_hold_micros = 150'000;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult elastic = RunScheduled("migrate:joiner:1->0@300");
  ASSERT_TRUE(elastic.ok) << "watchdog tripped during a migration freeze: "
                          << elastic.failure_message;
  EXPECT_EQ(elastic.migrations, 1u);
  EXPECT_EQ(Canonical(elastic.pairs), Canonical(clean.pairs));
}

TEST_F(MigrationScenario, ScriptedAutoscale242WithWorkerKill) {
  // The tentpole scenario: 4 joiners start packed on 2 workers, scale out
  // to 4, lose worker 3 mid-flight, and pack back down to 2 — results must
  // match the static clean run exactly.
  options_.num_joiners = 4;
  options_.num_workers = 4;
  options_.length_partition = PlanLengthPartition(stream_, options_.sim, options_.num_joiners,
                                                  PartitionMethod::kLoadAwareGreedy);
  options_.elastic = true;
  options_.elastic_initial_workers = 2;
  options_.elastic_interval_micros = 1'000'000'000;  // scripted, not load-driven
  options_.supervision.checkpoint_interval = 64;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult elastic = RunScheduled(
      "migrate:joiner:2->2@150; migrate:joiner:3->3@150;"
      " kill_worker:3@400;"
      " migrate:joiner:2->0@600; migrate:joiner:3->1@600");
  ASSERT_TRUE(elastic.ok) << elastic.failure_message;
  EXPECT_EQ(elastic.migrations, 4u);
  EXPECT_GT(elastic.migration_bytes, 0u);
  EXPECT_GT(elastic.restarts, 0u);
  EXPECT_EQ(elastic.result_count, clean.result_count);
  EXPECT_EQ(Canonical(elastic.pairs), Canonical(clean.pairs));
}

TEST_F(MigrationScenario, LoadDrivenControllerIsExact) {
  // Free-running elastic controller (no script): whatever migrations it
  // decides on, the result set must not change.
  options_.elastic = true;
  options_.elastic_initial_workers = 1;
  options_.elastic_interval_micros = 2'000;
  options_.migrate_threshold = 0.2;
  options_.arrival_rate_per_sec = 30'000;  // stretch the run past a few ticks
  const DistributedJoinResult clean = RunClean();
  DistributedJoinOptions elastic_options = options_;
  const DistributedJoinResult elastic = RunDistributedJoin(stream_, elastic_options);
  ASSERT_TRUE(elastic.ok) << elastic.failure_message;
  EXPECT_EQ(elastic.result_count, clean.result_count);
  EXPECT_EQ(Canonical(elastic.pairs), Canonical(clean.pairs));
}

// --- Distributed (TCP) handoff ------------------------------------------

std::string LocalhostCluster(const std::vector<uint16_t>& ports) {
  std::string spec;
  for (const uint16_t port : ports) {
    if (!spec.empty()) spec += ',';
    spec += "127.0.0.1:" + std::to_string(port);
  }
  return spec;
}

TEST(TcpMigrationTest, ElasticClusterMatchesInproc) {
  const std::vector<uint16_t> ports = net::PickFreePorts(2);
  if (ports.empty()) GTEST_SKIP() << "no localhost sockets available";
  const auto stream = MakeStream(907, 700);

  DistributedJoinOptions base;
  base.sim = SimilaritySpec(SimilarityFunction::kJaccard, 750);
  base.num_joiners = 2;
  base.collect_results = true;
  base.length_partition =
      PlanLengthPartition(stream, base.sim, base.num_joiners, PartitionMethod::kLoadAwareGreedy);
  const DistributedJoinResult inproc = RunDistributedJoin(stream, base);
  ASSERT_TRUE(inproc.ok);

  // Elastic cluster: joiners start packed on rank 0; the controller spreads
  // them onto rank 1 over live PREPARE/STATE/HANDOFF/ACK handoffs.
  DistributedJoinOptions elastic = base;
  elastic.transport = JoinTransport::kTcp;
  elastic.cluster = LocalhostCluster(ports);
  elastic.elastic = true;
  elastic.elastic_initial_workers = 1;
  elastic.elastic_interval_micros = 3'000;
  elastic.migrate_threshold = 0.2;
  elastic.arrival_rate_per_sec = 25'000;  // stretch the run past a few ticks

  DistributedJoinResult worker;
  std::thread worker_thread([&] {
    DistributedJoinOptions options = elastic;
    options.rank = 1;
    worker = RunDistributedJoin({}, options);
  });
  DistributedJoinOptions coord = elastic;
  coord.rank = 0;
  const DistributedJoinResult got = RunDistributedJoin(stream, coord);
  worker_thread.join();

  ASSERT_TRUE(got.ok) << got.failure_message;
  ASSERT_TRUE(worker.ok) << worker.failure_message;
  EXPECT_EQ(got.result_count, inproc.result_count);
  EXPECT_EQ(Canonical(got.pairs), Canonical(inproc.pairs));
}

}  // namespace
}  // namespace dssj
