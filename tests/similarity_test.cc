#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/record.h"

namespace dssj {
namespace {

using ::testing::TestWithParam;

// Reference similarity as exact rational comparisons, independent of the
// implementation under test.
bool ReferenceSatisfies(SimilarityFunction fn, int64_t p, size_t o, size_t l1, size_t l2) {
  if (l1 == 0 || l2 == 0) return false;
  const long double P = 1000.0L;
  const long double oo = static_cast<long double>(o);
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return oo * (P + static_cast<long double>(p)) >=
             static_cast<long double>(p) * static_cast<long double>(l1 + l2);
    case SimilarityFunction::kCosine:
      return oo * oo * P * P >= static_cast<long double>(p) * static_cast<long double>(p) *
                                    static_cast<long double>(l1) *
                                    static_cast<long double>(l2);
    case SimilarityFunction::kDice:
      return 2.0L * P * oo >=
             static_cast<long double>(p) * static_cast<long double>(l1 + l2);
    case SimilarityFunction::kOverlap:
      return o >= static_cast<size_t>(p);
  }
  return false;
}

class SimilaritySweepTest
    : public TestWithParam<std::tuple<SimilarityFunction, int64_t>> {
 protected:
  SimilarityFunction fn() const { return std::get<0>(GetParam()); }
  int64_t threshold() const { return std::get<1>(GetParam()); }
  SimilaritySpec spec() const { return SimilaritySpec(fn(), threshold()); }
};

TEST_P(SimilaritySweepTest, SatisfiesMatchesReference) {
  const SimilaritySpec s = spec();
  for (size_t l1 = 0; l1 <= 40; ++l1) {
    for (size_t l2 = 0; l2 <= 40; ++l2) {
      for (size_t o = 0; o <= std::min(l1, l2); ++o) {
        EXPECT_EQ(s.Satisfies(o, l1, l2), ReferenceSatisfies(fn(), threshold(), o, l1, l2))
            << "o=" << o << " l1=" << l1 << " l2=" << l2;
      }
    }
  }
}

TEST_P(SimilaritySweepTest, MinOverlapIsThresholdOfSatisfies) {
  const SimilaritySpec s = spec();
  for (size_t l1 = 1; l1 <= 50; ++l1) {
    for (size_t l2 = 1; l2 <= 50; ++l2) {
      const size_t alpha = s.MinOverlap(l1, l2);
      // Every overlap >= alpha (and feasible) satisfies; below alpha never.
      for (size_t o = 0; o <= std::min(l1, l2); ++o) {
        EXPECT_EQ(o >= alpha, s.Satisfies(o, l1, l2))
            << "o=" << o << " alpha=" << alpha << " l1=" << l1 << " l2=" << l2;
      }
    }
  }
}

TEST_P(SimilaritySweepTest, LengthBoundsAreTightAndSymmetric) {
  const SimilaritySpec s = spec();
  for (size_t l1 = 1; l1 <= 60; ++l1) {
    // Records that cannot be in any pair (PrefixLength 0, e.g. shorter than
    // an absolute Overlap threshold) are filtered before length bounds
    // apply.
    if (s.PrefixLength(l1) == 0) continue;
    const size_t lo = s.LengthLowerBound(l1);
    const size_t hi = s.LengthUpperBound(l1);
    for (size_t l2 = 1; l2 <= 80; ++l2) {
      if (s.PrefixLength(l2) == 0) continue;
      const bool in_range = l2 >= lo && l2 <= hi;
      // Feasible ⇔ the best-case overlap min(l1,l2) satisfies.
      const bool feasible = s.Satisfies(std::min(l1, l2), l1, l2);
      EXPECT_EQ(in_range, feasible) << "l1=" << l1 << " l2=" << l2;
      // Symmetry of eligibility.
      const bool symmetric =
          l1 >= s.LengthLowerBound(l2) && l1 <= s.LengthUpperBound(l2);
      EXPECT_EQ(in_range, symmetric) << "l1=" << l1 << " l2=" << l2;
    }
  }
}

TEST_P(SimilaritySweepTest, PrefixLengthCoversAllEligiblePartners) {
  const SimilaritySpec s = spec();
  for (size_t l = 1; l <= 60; ++l) {
    const size_t prefix = s.PrefixLength(l);
    if (prefix == 0) {
      // No partner length may be feasible.
      for (size_t l2 = 1; l2 <= 80; ++l2) {
        EXPECT_FALSE(s.Satisfies(std::min(l, l2), l, l2));
      }
      continue;
    }
    EXPECT_LE(prefix, l);
    // prefix = l - alpha_min + 1 where alpha_min is the loosest requirement.
    size_t alpha_min = l + 1;
    for (size_t l2 = s.LengthLowerBound(l); l2 <= std::min<size_t>(s.LengthUpperBound(l), 200);
         ++l2) {
      alpha_min = std::min(alpha_min, s.MinOverlap(l, l2));
    }
    ASSERT_LE(alpha_min, l);
    EXPECT_EQ(prefix, l - alpha_min + 1) << "l=" << l;
  }
}

TEST_P(SimilaritySweepTest, PrefixFilterNeverMissesASatisfyingPair) {
  // Random pairs engineered to often satisfy the predicate: if sim(r,s)>=t
  // then the first PrefixLength tokens of each must intersect.
  const SimilaritySpec s = spec();
  Rng rng(1234 + static_cast<uint64_t>(threshold()));
  int satisfying = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t l1 = 1 + rng.Uniform(30);
    std::vector<TokenId> a;
    for (size_t i = 0; i < l1; ++i) a.push_back(static_cast<TokenId>(rng.Uniform(60)));
    NormalizeTokens(a);
    // Mutate a into b.
    std::vector<TokenId> b = a;
    const size_t mutations = rng.Uniform(4);
    for (size_t m = 0; m < mutations; ++m) {
      if (!b.empty() && rng.Bernoulli(0.5)) b.erase(b.begin() + rng.Uniform(b.size()));
      if (rng.Bernoulli(0.5)) b.push_back(static_cast<TokenId>(rng.Uniform(60)));
    }
    NormalizeTokens(b);
    if (a.empty() || b.empty()) continue;
    const size_t o = OverlapSize(a, b);
    if (!s.Satisfies(o, a.size(), b.size())) continue;
    ++satisfying;
    const size_t pa = s.PrefixLength(a.size());
    const size_t pb = s.PrefixLength(b.size());
    ASSERT_GE(pa, 1u);
    ASSERT_GE(pb, 1u);
    std::vector<TokenId> prefix_a(a.begin(), a.begin() + pa);
    std::vector<TokenId> prefix_b(b.begin(), b.begin() + pb);
    EXPECT_GT(OverlapSize(prefix_a, prefix_b), 0u)
        << "satisfying pair with disjoint prefixes";
  }
  EXPECT_GT(satisfying, 10) << "test workload generated too few satisfying pairs";
}

INSTANTIATE_TEST_SUITE_P(
    RatioFunctions, SimilaritySweepTest,
    ::testing::Combine(::testing::Values(SimilarityFunction::kJaccard,
                                         SimilarityFunction::kCosine,
                                         SimilarityFunction::kDice),
                       ::testing::Values<int64_t>(500, 600, 700, 750, 800, 900, 950, 1000)),
    [](const auto& info) {
      return std::string(SimilarityFunctionName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    OverlapFunction, SimilaritySweepTest,
    ::testing::Combine(::testing::Values(SimilarityFunction::kOverlap),
                       ::testing::Values<int64_t>(1, 2, 3, 5, 8)),
    [](const auto& info) {
      return std::string("overlap_") + std::to_string(std::get<1>(info.param));
    });

TEST(SimilaritySpecTest, JaccardKnownValues) {
  const SimilaritySpec s(SimilarityFunction::kJaccard, 800);
  // |r|=|s|=10, o=9: J = 9/11 = 0.818... >= 0.8.
  EXPECT_TRUE(s.Satisfies(9, 10, 10));
  // o=8: J = 8/12 = 0.666 < 0.8.
  EXPECT_FALSE(s.Satisfies(8, 10, 10));
  EXPECT_EQ(s.MinOverlap(10, 10), 9u);
  // Classic prefix formula: l - ceil(t l) + 1 = 10 - 8 + 1 = 3.
  EXPECT_EQ(s.PrefixLength(10), 3u);
  EXPECT_EQ(s.LengthLowerBound(10), 8u);
  EXPECT_EQ(s.LengthUpperBound(10), 12u);
}

TEST(SimilaritySpecTest, ThresholdOneKeepsOnlyExactDuplicates) {
  for (const SimilarityFunction fn :
       {SimilarityFunction::kJaccard, SimilarityFunction::kCosine, SimilarityFunction::kDice}) {
    const SimilaritySpec s(fn, 1000);
    for (size_t l = 1; l <= 30; ++l) {
      EXPECT_TRUE(s.Satisfies(l, l, l));
      if (l > 1) {
        EXPECT_FALSE(s.Satisfies(l - 1, l, l));
      }
      EXPECT_EQ(s.LengthLowerBound(l), l);
      EXPECT_EQ(s.LengthUpperBound(l), l);
      EXPECT_EQ(s.PrefixLength(l), 1u);
    }
  }
}

TEST(SimilaritySpecTest, EmptySetsNeverMatch) {
  const SimilaritySpec s(SimilarityFunction::kJaccard, 500);
  EXPECT_FALSE(s.Satisfies(0, 0, 0));
  EXPECT_FALSE(s.Satisfies(0, 0, 5));
  EXPECT_EQ(s.PrefixLength(0), 0u);
}

TEST(SimilaritySpecTest, EvaluateSimilarityMatchesDefinition) {
  const SimilaritySpec j(SimilarityFunction::kJaccard, 500);
  EXPECT_DOUBLE_EQ(j.EvaluateSimilarity(3, 5, 4), 3.0 / 6.0);
  const SimilaritySpec c(SimilarityFunction::kCosine, 500);
  EXPECT_DOUBLE_EQ(c.EvaluateSimilarity(3, 4, 9), 3.0 / 6.0);
  const SimilaritySpec d(SimilarityFunction::kDice, 500);
  EXPECT_DOUBLE_EQ(d.EvaluateSimilarity(3, 5, 7), 6.0 / 12.0);
}

TEST(SimilaritySpecTest, ToStringIsInformative) {
  EXPECT_EQ(SimilaritySpec(SimilarityFunction::kJaccard, 800).ToString(), "jaccard>=800/1000");
  EXPECT_EQ(SimilaritySpec(SimilarityFunction::kOverlap, 4).ToString(), "overlap>=4");
}

}  // namespace
}  // namespace dssj
