// Transport tests: loopback (wire-encoded single process) and real TCP
// clusters — each rank is a thread calling RunDistributedJoin, exactly the
// multi-process code path minus fork/exec (net_smoke_test covers that).
// Every run's result set must be byte-identical to the single-process
// reference, including under scripted link disconnects and task kills.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/join_topology.h"
#include "net/transport.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  return WorkloadGenerator(options).Generate(n);
}

DistributedJoinOptions BaseOptions(const std::vector<RecordPtr>& stream) {
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
  options.num_joiners = 4;
  options.collect_results = true;
  options.length_partition = PlanLengthPartition(stream, options.sim, options.num_joiners,
                                                 PartitionMethod::kLoadAwareGreedy);
  return options;
}

std::string LocalhostCluster(const std::vector<uint16_t>& ports) {
  std::string spec;
  for (const uint16_t port : ports) {
    if (!spec.empty()) spec += ',';
    spec += "127.0.0.1:" + std::to_string(port);
  }
  return spec;
}

struct ClusterRun {
  DistributedJoinResult coordinator;
  std::vector<DistributedJoinResult> workers;  ///< index = rank - 1
};

/// Runs `ranks` copies of RunDistributedJoin (rank 0 on the calling thread)
/// against a fresh localhost cluster. `coordinator_delay_ms` starts rank 0
/// late, exercising the workers' connect retry.
ClusterRun RunTcpCluster(const std::vector<RecordPtr>& input,
                         const DistributedJoinOptions& base, const std::string& cluster,
                         int ranks, int coordinator_delay_ms = 0) {
  ClusterRun run;
  run.workers.resize(ranks - 1);
  std::vector<std::thread> threads;
  for (int rank = 1; rank < ranks; ++rank) {
    threads.emplace_back([&, rank] {
      DistributedJoinOptions options = base;
      options.transport = JoinTransport::kTcp;
      options.cluster = cluster;
      options.rank = rank;
      run.workers[rank - 1] = RunDistributedJoin({}, options);
    });
  }
  if (coordinator_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(coordinator_delay_ms));
  }
  DistributedJoinOptions options = base;
  options.transport = JoinTransport::kTcp;
  options.cluster = cluster;
  options.rank = 0;
  run.coordinator = RunDistributedJoin(input, options);
  for (std::thread& t : threads) t.join();
  return run;
}

TEST(ClusterSpecTest, ParsesHostsAndPorts) {
  auto parsed = net::ParseClusterSpec("127.0.0.1:9000,example.org:80");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].host, "127.0.0.1");
  EXPECT_EQ(parsed.value()[0].port, 9000);
  EXPECT_EQ(parsed.value()[1].host, "example.org");
  EXPECT_EQ(parsed.value()[1].port, 80);
}

TEST(ClusterSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(net::ParseClusterSpec("").ok());
  EXPECT_FALSE(net::ParseClusterSpec("hostonly").ok());
  EXPECT_FALSE(net::ParseClusterSpec("h:notaport").ok());
  EXPECT_FALSE(net::ParseClusterSpec("h:70000").ok());
  EXPECT_FALSE(net::ParseClusterSpec("h:0").ok());
  EXPECT_FALSE(net::ParseClusterSpec(":123").ok());
  EXPECT_FALSE(net::ParseClusterSpec("a:1,,b:2").ok());
}

TEST(LoopbackTransportTest, MatchesInprocResultSet) {
  const auto stream = MakeStream(17, 600);
  DistributedJoinOptions options = BaseOptions(stream);
  const DistributedJoinResult inproc = RunDistributedJoin(stream, options);
  for (const int workers : {2, 3}) {
    options.transport = JoinTransport::kLoopback;
    options.num_workers = workers;
    const DistributedJoinResult loopback = RunDistributedJoin(stream, options);
    EXPECT_TRUE(loopback.ok) << loopback.failure_message;
    EXPECT_EQ(Canonical(loopback.pairs), Canonical(inproc.pairs)) << "workers=" << workers;
    EXPECT_EQ(loopback.result_count, inproc.result_count);
  }
}

TEST(LoopbackTransportTest, BatchSizeInvariant) {
  const auto stream = MakeStream(23, 400);
  DistributedJoinOptions options = BaseOptions(stream);
  const DistributedJoinResult reference = RunDistributedJoin(stream, options);
  options.transport = JoinTransport::kLoopback;
  options.num_workers = 2;
  for (const size_t batch : {size_t{1}, size_t{16}, size_t{128}}) {
    options.batch_size = batch;
    const DistributedJoinResult got = RunDistributedJoin(stream, options);
    EXPECT_EQ(Canonical(got.pairs), Canonical(reference.pairs)) << "batch=" << batch;
  }
}

class TcpClusterTest : public ::testing::Test {
 protected:
  /// Binds a fresh localhost cluster spec or skips on sandboxed runners.
  std::string ClusterOrSkip(int ranks) {
    const std::vector<uint16_t> ports = net::PickFreePorts(ranks);
    if (ports.empty()) return "";
    return LocalhostCluster(ports);
  }
};

TEST_F(TcpClusterTest, TwoRanksMatchSingleProcessAtEveryBatchSize) {
  const auto stream = MakeStream(31, 600);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult reference = RunDistributedJoin(stream, base);
  ASSERT_GT(reference.result_count, 0u) << "vacuous stream";
  for (const size_t batch : {size_t{1}, size_t{16}, size_t{128}}) {
    const std::string cluster = ClusterOrSkip(2);
    if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
    base.batch_size = batch;
    const ClusterRun run = RunTcpCluster(stream, base, cluster, 2);
    ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
    ASSERT_TRUE(run.workers[0].ok) << run.workers[0].failure_message;
    EXPECT_EQ(Canonical(run.coordinator.pairs), Canonical(reference.pairs))
        << "batch=" << batch;
    EXPECT_EQ(run.coordinator.result_count, reference.result_count) << "batch=" << batch;
  }
}

TEST_F(TcpClusterTest, ThreeRanksMatchSingleProcess) {
  const auto stream = MakeStream(37, 600);
  DistributedJoinOptions base = BaseOptions(stream);
  base.num_joiners = 6;  // two joiners per rank
  base.length_partition = PlanLengthPartition(stream, base.sim, base.num_joiners,
                                              PartitionMethod::kLoadAwareGreedy);
  const DistributedJoinResult reference = RunDistributedJoin(stream, base);
  const std::string cluster = ClusterOrSkip(3);
  if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
  const ClusterRun run = RunTcpCluster(stream, base, cluster, 3);
  ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
  EXPECT_EQ(Canonical(run.coordinator.pairs), Canonical(reference.pairs));
  EXPECT_EQ(run.coordinator.result_count, reference.result_count);
}

TEST_F(TcpClusterTest, LateCoordinatorIsCoveredByConnectRetry) {
  const auto stream = MakeStream(41, 300);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult reference = RunDistributedJoin(stream, base);
  const std::string cluster = ClusterOrSkip(2);
  if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
  const ClusterRun run = RunTcpCluster(stream, base, cluster, 2, /*coordinator_delay_ms=*/250);
  ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
  EXPECT_EQ(Canonical(run.coordinator.pairs), Canonical(reference.pairs));
}

TEST_F(TcpClusterTest, ScriptedDisconnectRecoversExactly) {
  const auto stream = MakeStream(43, 600);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult reference = RunDistributedJoin(stream, base);
  const std::string cluster = ClusterOrSkip(2);
  if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
  // joiner:1 lives on rank 1 (placement i % workers), so this severs a real
  // socket mid-stream and redials after 20ms.
  base.fault_script = "disconnect:dispatcher:0->joiner:1@10x20000";
  base.supervise = true;
  base.supervision.checkpoint_interval = 16;
  const ClusterRun run = RunTcpCluster(stream, base, cluster, 2);
  ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
  ASSERT_TRUE(run.workers[0].ok) << run.workers[0].failure_message;
  EXPECT_EQ(Canonical(run.coordinator.pairs), Canonical(reference.pairs));
  EXPECT_EQ(run.coordinator.result_count, reference.result_count);
}

TEST_F(TcpClusterTest, RemoteTaskKillRecoversViaCheckpointReplay) {
  const auto stream = MakeStream(47, 600);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult reference = RunDistributedJoin(stream, base);
  const std::string cluster = ClusterOrSkip(2);
  if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
  // joiner:1 is hosted on rank 1: the kill, checkpoint restore, and replay
  // all happen in the worker process-equivalent, and the coordinator's
  // restart counter still sees it through the metrics barrier.
  base.fault_script = "kill:joiner:1@40; disconnect:dispatcher:0->joiner:1@80x10000";
  base.supervise = true;
  base.supervision.checkpoint_interval = 16;
  const ClusterRun run = RunTcpCluster(stream, base, cluster, 2);
  ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
  ASSERT_TRUE(run.workers[0].ok) << run.workers[0].failure_message;
  EXPECT_EQ(Canonical(run.coordinator.pairs), Canonical(reference.pairs));
  EXPECT_EQ(run.coordinator.result_count, reference.result_count);
  EXPECT_GE(run.coordinator.restarts, 1u) << "kill did not reach the remote joiner";
}

TEST_F(TcpClusterTest, RemoteFailurePropagatesToCoordinator) {
  const auto stream = MakeStream(53, 400);
  DistributedJoinOptions base = BaseOptions(stream);
  const std::string cluster = ClusterOrSkip(2);
  if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
  // Restart budget 0: the first kill on the remote joiner exhausts it and
  // the worker's failure must surface in the coordinator's result.
  base.fault_script = "kill:joiner:1@40";
  base.supervise = true;
  base.supervision.checkpoint_interval = 16;
  base.supervision.max_restarts = 0;
  const ClusterRun run = RunTcpCluster(stream, base, cluster, 2);
  EXPECT_FALSE(run.coordinator.ok);
  EXPECT_FALSE(run.coordinator.failure_message.empty());
  EXPECT_FALSE(run.workers[0].ok);
}

}  // namespace
}  // namespace dssj
