#include "core/verify.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/record.h"

namespace dssj {
namespace {

std::vector<TokenId> RandomSet(Rng& rng, size_t max_len, TokenId universe) {
  std::vector<TokenId> v;
  const size_t n = rng.Uniform(max_len + 1);
  for (size_t i = 0; i < n; ++i) v.push_back(static_cast<TokenId>(rng.Uniform(universe)));
  NormalizeTokens(v);
  return v;
}

TEST(VerifyOverlapTest, ExactWithoutEarlyExit) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = RandomSet(rng, 40, 80);
    const auto b = RandomSet(rng, 40, 80);
    EXPECT_EQ(VerifyOverlap(a, b, 0), OverlapSize(a, b));
  }
}

TEST(VerifyOverlapTest, EarlyExitNeverFlipsTheDecision) {
  Rng rng(8);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = RandomSet(rng, 40, 60);
    const auto b = RandomSet(rng, 40, 60);
    const size_t truth = OverlapSize(a, b);
    for (size_t required = 1; required <= 12; ++required) {
      const size_t got = VerifyOverlap(a, b, required);
      EXPECT_EQ(got >= required, truth >= required)
          << "required=" << required << " truth=" << truth << " got=" << got;
      if (got >= required) {
        // Ran to completion, so the value must be exact.
        EXPECT_EQ(got, truth);
      }
    }
  }
}

TEST(VerifyOverlapTest, CountersAccumulate) {
  VerifyCounters counters;
  const std::vector<TokenId> a{1, 2, 3, 4, 5};
  const std::vector<TokenId> b{2, 4, 6};
  VerifyOverlap(a, b, 0, &counters);
  EXPECT_EQ(counters.full_verifications, 1u);
  EXPECT_GT(counters.merge_steps, 0u);
  EXPECT_EQ(counters.early_exits, 0u);
  // A hopeless requirement exits immediately.
  VerifyOverlap(a, b, 100, &counters);
  EXPECT_EQ(counters.early_exits, 1u);
}

TEST(VerifyOverlapTest, EmptyInputs) {
  const std::vector<TokenId> empty;
  const std::vector<TokenId> some{1, 2, 3};
  EXPECT_EQ(VerifyOverlap(empty, some, 0), 0u);
  EXPECT_EQ(VerifyOverlap(some, empty, 0), 0u);
  EXPECT_EQ(VerifyOverlap(empty, empty, 0), 0u);
}

TEST(IntersectCountTest, MatchesOverlapSizeOnBothCodePaths) {
  Rng rng(9);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto probe = RandomSet(rng, 60, 120);
    // Small diff exercises the galloping path; larger the merge path.
    const auto diff = RandomSet(rng, trial % 2 == 0 ? 3 : 40, 120);
    EXPECT_EQ(IntersectCount(probe, diff), OverlapSize(probe, diff));
  }
}

TEST(IntersectCountTest, CountsDiffVerifications) {
  VerifyCounters counters;
  IntersectCount(std::vector<TokenId>{1, 2, 3}, std::vector<TokenId>{2}, &counters);
  EXPECT_EQ(counters.diff_verifications, 1u);
}

TEST(SymmetricDifferenceLowerBoundTest, NeverExceedsTheTruth) {
  Rng rng(10);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto a = RandomSet(rng, 30, 50);
    const auto b = RandomSet(rng, 30, 50);
    const size_t truth = a.size() + b.size() - 2 * OverlapSize(a, b);
    for (int depth = 0; depth <= 5; ++depth) {
      const size_t bound = SymmetricDifferenceLowerBound(a, b, depth);
      ASSERT_LE(bound, truth) << "unsound bound at depth " << depth;
    }
  }
}

TEST(SymmetricDifferenceLowerBoundTest, DeeperIsAtLeastAsTight) {
  Rng rng(11);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto a = RandomSet(rng, 40, 60);
    const auto b = RandomSet(rng, 40, 60);
    size_t prev = 0;
    for (int depth = 0; depth <= 4; ++depth) {
      const size_t bound = SymmetricDifferenceLowerBound(a, b, depth);
      EXPECT_GE(bound, prev) << "bound weakened with depth";
      prev = bound;
    }
  }
}

TEST(SymmetricDifferenceLowerBoundTest, DetectsDisjointSets) {
  // Fully disjoint interleaved sets: the bound should find real distance.
  std::vector<TokenId> a, b;
  for (TokenId t = 0; t < 40; t += 2) {
    a.push_back(t);
    b.push_back(t + 1);
  }
  EXPECT_EQ(SymmetricDifferenceLowerBound(a, a, 4), 0u);
  EXPECT_GT(SymmetricDifferenceLowerBound(a, b, 4), 0u);
  // Depth 0 only sees the size difference.
  EXPECT_EQ(SymmetricDifferenceLowerBound(a, b, 0), 0u);
}

}  // namespace
}  // namespace dssj
