#include "core/adaptive_router.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/join_topology.h"
#include "workload/drift.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> DriftStream(uint64_t seed, size_t n) {
  DriftOptions options;
  options.base.seed = seed;
  options.base.token_universe = 2000;
  options.base.zipf_skew = 0.6;
  options.base.length = LengthModel::LogNormal(8.0, 0.4, 2, 120);
  options.base.duplicate_fraction = 0.35;
  options.base.mutation_rate = 0.1;
  options.base.dup_locality = 400;
  options.end_length_mean = 30.0;
  options.drift_records = n;
  return DriftingGenerator(options).Generate(n);
}

AdaptiveRouterOptions FastAdapt() {
  AdaptiveRouterOptions options;
  options.replan_interval = 2000;
  options.half_life_records = 2000;
  options.policy.min_improvement = 1.05;
  return options;
}

TEST(AdaptiveLengthRouterTest, ReplansUnderDriftAndStoresExactlyOnce) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const auto stream = DriftStream(61, 20000);
  const std::vector<RecordPtr> head(stream.begin(), stream.begin() + 2000);
  AdaptiveLengthRouter router(
      sim, PlanLengthPartition(head, sim, 6, PartitionMethod::kLoadAwareGreedy),
      FastAdapt());
  std::vector<RouteTarget> targets;
  for (const RecordPtr& r : stream) {
    router.Route(*r, targets);
    int stores = 0;
    for (const RouteTarget& t : targets) {
      EXPECT_TRUE(t.probe);
      stores += t.store ? 1 : 0;
    }
    if (!targets.empty()) EXPECT_EQ(stores, 1);
  }
  EXPECT_GT(router.replans(), 0u) << "drift never triggered a replan";
  EXPECT_LE(router.live_epochs(), FastAdapt().max_epochs);
}

TEST(AdaptiveLengthRouterTest, EpochsRetireWithTimeWindows) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const auto stream = DriftStream(62, 30000);
  AdaptiveRouterOptions options = FastAdapt();
  options.window_span_micros = 2000 * 1000;  // 2000 records of stream time
  const std::vector<RecordPtr> head(stream.begin(), stream.begin() + 2000);
  AdaptiveLengthRouter router(
      sim, PlanLengthPartition(head, sim, 6, PartitionMethod::kLoadAwareGreedy), options);
  std::vector<RouteTarget> targets;
  size_t max_live = 0;
  for (const RecordPtr& r : stream) {
    router.Route(*r, targets);
    max_live = std::max(max_live, router.live_epochs());
  }
  EXPECT_GT(router.replans(), 1u);
  // replans()+1 epochs were created in total; retirement must have culled
  // some, and the live set stays small (current + those within one window
  // span of the last two replans).
  EXPECT_LT(router.live_epochs(), router.replans() + 1);
  EXPECT_LE(router.live_epochs(), 3u);
  EXPECT_GE(max_live, 2u);
}

TEST(AdaptiveLengthRouterTest, StopsReplanningAtEpochCapWithoutRetirement) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const auto stream = DriftStream(63, 40000);
  AdaptiveRouterOptions options = FastAdapt();
  options.max_epochs = 3;
  options.window_span_micros = 0;  // never retire
  const std::vector<RecordPtr> head(stream.begin(), stream.begin() + 2000);
  AdaptiveLengthRouter router(
      sim, PlanLengthPartition(head, sim, 6, PartitionMethod::kLoadAwareGreedy), options);
  std::vector<RouteTarget> targets;
  for (const RecordPtr& r : stream) router.Route(*r, targets);
  EXPECT_LE(router.live_epochs(), 3u);
  EXPECT_LE(router.replans(), 2u);
}

// --- Epoch-retirement boundary behavior --------------------------------------

/// Options that accept every proposed replan (improvement bar at zero), so
/// epoch creation is driven purely by replan_interval and max_epochs.
AdaptiveRouterOptions ForcedReplans(uint64_t interval, int64_t span_micros,
                                    size_t max_epochs) {
  AdaptiveRouterOptions options;
  options.replan_interval = interval;
  options.policy.min_improvement = 0.0;
  options.window_span_micros = span_micros;
  options.max_epochs = max_epochs;
  return options;
}

RecordPtr TimedRecord(uint64_t seq, std::initializer_list<TokenId> tokens, int64_t ts) {
  return MakeRecord(seq, seq, tokens, ts);
}

TEST(AdaptiveLengthRouterTest, RetirementBoundaryIsExclusive) {
  // An epoch closed exactly window_span ago still covers unexpired records
  // (time windows evict strictly-older entries), so it must be retained; one
  // microsecond past the span it must retire.
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  constexpr int64_t kSpan = 1000;
  AdaptiveLengthRouter router(sim, LengthPartition({0, 8, 64}),
                              ForcedReplans(/*interval=*/100, kSpan, /*max_epochs=*/8));
  std::vector<RouteTarget> targets;
  uint64_t seq = 0;
  // 100 records at ts=0: the 100th triggers a replan closing epoch 0 at 0.
  for (int i = 0; i < 100; ++i) {
    router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, 0), targets);
  }
  ASSERT_EQ(router.replans(), 1u);
  ASSERT_EQ(router.live_epochs(), 2u);
  // Exactly window_span later: retained.
  router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, kSpan), targets);
  EXPECT_EQ(router.live_epochs(), 2u) << "epoch closed exactly window_span ago must stay";
  // One past: retired.
  router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, kSpan + 1), targets);
  EXPECT_EQ(router.live_epochs(), 1u);
}

TEST(AdaptiveLengthRouterTest, ZeroRecordEpochsRetireCleanly) {
  // Zero-length records are observed by the drift monitor and drive both
  // retirement and replanning even though Route emits no targets for them —
  // an epoch can therefore close having stored nothing. Retiring it must
  // not crash or disturb the store-exactly-once invariant.
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  AdaptiveLengthRouter router(sim, LengthPartition({0, 8, 64}),
                              ForcedReplans(/*interval=*/10, /*span=*/1000,
                                            /*max_epochs=*/8));
  std::vector<RouteTarget> targets;
  uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) {
    router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, 0), targets);
  }
  ASSERT_EQ(router.replans(), 1u);
  // Ten empty records: no targets, but the interval elapses and the young
  // epoch closes with zero stored records.
  for (int i = 0; i < 10; ++i) {
    router.Route(*TimedRecord(seq++, {}, 0), targets);
    EXPECT_TRUE(targets.empty()) << "empty records must not route anywhere";
  }
  ASSERT_EQ(router.replans(), 2u);
  ASSERT_EQ(router.live_epochs(), 3u);
  // Far in the future: both closed epochs (one empty) retire.
  router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, 5000), targets);
  EXPECT_EQ(router.live_epochs(), 1u);
  int stores = 0;
  for (const RouteTarget& t : targets) stores += t.store ? 1 : 0;
  EXPECT_EQ(stores, 1) << "store-exactly-once must survive retirement";
}

TEST(AdaptiveLengthRouterTest, BackwardTimestampsDoNotRetireOrCrash) {
  // Replay after a fault can re-deliver records whose timestamps precede
  // the newest epoch's close time. now - span goes far negative; nothing
  // may retire and routing must stay well-formed.
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  AdaptiveLengthRouter router(sim, LengthPartition({0, 8, 64}),
                              ForcedReplans(/*interval=*/10, /*span=*/1000,
                                            /*max_epochs=*/8));
  std::vector<RouteTarget> targets;
  uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) {
    router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, 10000), targets);
  }
  ASSERT_EQ(router.live_epochs(), 2u);
  for (int i = 0; i < 5; ++i) {
    router.Route(*TimedRecord(seq++, {1, 2, 3, 4}, 500), targets);
    EXPECT_EQ(router.live_epochs(), 2u) << "backward time must never retire";
    int stores = 0;
    for (const RouteTarget& t : targets) {
      EXPECT_TRUE(t.probe);
      stores += t.store ? 1 : 0;
    }
    EXPECT_EQ(stores, 1);
  }
}

TEST(AdaptiveDistributedJoinTest, MatchesBruteForceUnderDrift) {
  // End-to-end: adaptive routing must not lose or duplicate any pair, even
  // while epochs are created and retired mid-stream.
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  const auto stream = DriftStream(64, 12000);
  const WindowSpec window = WindowSpec::ByTime(1500 * 1000);

  DistributedJoinOptions options;
  options.sim = sim;
  options.window = window;
  options.strategy = DistributionStrategy::kLengthBased;
  options.num_joiners = 6;
  options.collect_results = true;
  options.adaptive = true;
  options.adaptive_options = FastAdapt();
  const std::vector<RecordPtr> head(stream.begin(), stream.begin() + 2000);
  options.length_partition =
      PlanLengthPartition(head, sim, 6, PartitionMethod::kLoadAwareGreedy);

  const DistributedJoinResult result = RunDistributedJoin(stream, options);
  EXPECT_GT(result.router_replans, 0u) << "test did not exercise adaptation";

  BruteForceJoiner oracle(sim, window);
  const auto expected = Canonical(SingleNodeJoin(stream, oracle));
  EXPECT_EQ(Canonical(result.pairs), expected);
  EXPECT_GT(expected.size(), 100u) << "vacuous stream";
  // Still no replication: every non-degenerate record stored exactly once.
  EXPECT_LE(result.replication_factor, 1.0);
}

TEST(AdaptiveDistributedJoinTest, RejectsMultipleDispatchers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DistributedJoinOptions options;
  options.strategy = DistributionStrategy::kLengthBased;
  options.adaptive = true;
  options.num_dispatchers = 2;
  options.num_joiners = 2;
  options.length_partition = LengthPartition({0, 8, 64});
  EXPECT_DEATH(MakeRouter(options), "one dispatcher");
}

}  // namespace
}  // namespace dssj
