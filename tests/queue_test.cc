#include "stream/queue.h"

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dssj::stream {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.Push(i);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop(), i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPopOnEmpty) {
  BoundedQueue<int> q(2);
  int out = -1;
  EXPECT_FALSE(q.TryPop(&out));
  q.Push(7);
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 7);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "push did not block at capacity";
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, MpmcStressDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20000;
  BoundedQueue<std::pair<int, int>> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push({p, i});
    });
  }
  std::mutex mu;
  std::map<int, std::vector<int>> received;  // producer -> sequence seen
  std::vector<std::thread> consumers;
  std::atomic<int> remaining{kProducers * kPerProducer};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (remaining.fetch_sub(1) > 0) {
        const auto [p, i] = q.Pop();
        std::lock_guard<std::mutex> lock(mu);
        received[p].push_back(i);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  size_t total = 0;
  for (auto& [p, seqs] : received) {
    total += seqs.size();
    std::sort(seqs.begin(), seqs.end());
    for (int i = 0; i < static_cast<int>(seqs.size()); ++i) {
      ASSERT_EQ(seqs[i], i) << "producer " << p << " lost or duplicated an item";
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
}

TEST(BoundedQueueTest, PerProducerOrderPreservedWithSingleConsumer) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 10000;
  BoundedQueue<std::pair<int, int>> q(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push({p, i});
    });
  }
  std::vector<int> next(kProducers, 0);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    const auto [p, i] = q.Pop();
    ASSERT_EQ(i, next[p]) << "per-producer FIFO violated";
    ++next[p];
  }
  for (auto& t : producers) t.join();
}

TEST(BoundedQueueTest, PushBatchDrainsInputAndReportsDepth) {
  BoundedQueue<int> q(8);
  std::vector<int> batch{1, 2, 3};
  EXPECT_EQ(q.PushBatch(&batch), 3u);
  EXPECT_TRUE(batch.empty()) << "PushBatch must drain the input vector";
  for (int i = 1; i <= 3; ++i) EXPECT_EQ(q.Pop(), i);
}

TEST(BoundedQueueTest, PushBatchLargerThanCapacityBackpressures) {
  BoundedQueue<int> q(4);
  constexpr int kItems = 100;
  std::thread producer([&q] {
    std::vector<int> batch;
    for (int i = 0; i < kItems; ++i) batch.push_back(i);
    q.PushBatch(&batch);  // must chunk: batch is 25x the capacity
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(q.Pop(), i) << "chunked batch must stay in order";
  }
  producer.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PopBatchRespectsMaxItemsAndOrder) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.PopBatch(&out, 100), 6u) << "PopBatch takes at most what is queued";
  EXPECT_EQ(out.size(), 10u) << "PopBatch appends to the output vector";
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(BoundedQueueTest, DrainIsNonBlockingAndEmptiesTheQueue) {
  BoundedQueue<int> q(8);
  std::vector<int> out;
  EXPECT_EQ(q.Drain(&out), 0u) << "Drain on empty must not block";
  for (int i = 0; i < 5; ++i) q.Push(i);
  EXPECT_EQ(q.Drain(&out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PushBatchFromManyProducersPreservesPerProducerFifo) {
  // The invariant the batched transport layer leans on: whatever interleaving
  // PushBatch chunks produce across producers, each producer's own items
  // arrive in order. Small capacity forces chunking and backpressure.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  constexpr int kBatch = 7;  // deliberately not a divisor of kPerProducer
  BoundedQueue<std::pair<int, int>> q(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::vector<std::pair<int, int>> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        batch.push_back({p, i});
        if (batch.size() == kBatch) q.PushBatch(&batch);
      }
      q.PushBatch(&batch);  // flush the remainder
    });
  }
  std::vector<int> next(kProducers, 0);
  std::vector<std::pair<int, int>> out;
  int received = 0;
  while (received < kProducers * kPerProducer) {
    out.clear();
    q.PopBatch(&out, 32);
    for (const auto& [p, i] : out) {
      ASSERT_EQ(i, next[p]) << "per-producer FIFO violated under PushBatch";
      ++next[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace dssj::stream
