#include "stream/queue.h"

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dssj::stream {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.Push(i);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop(), i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPopOnEmpty) {
  BoundedQueue<int> q(2);
  int out = -1;
  EXPECT_FALSE(q.TryPop(&out));
  q.Push(7);
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 7);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "push did not block at capacity";
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, MpmcStressDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20000;
  BoundedQueue<std::pair<int, int>> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push({p, i});
    });
  }
  std::mutex mu;
  std::map<int, std::vector<int>> received;  // producer -> sequence seen
  std::vector<std::thread> consumers;
  std::atomic<int> remaining{kProducers * kPerProducer};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (remaining.fetch_sub(1) > 0) {
        const auto [p, i] = q.Pop();
        std::lock_guard<std::mutex> lock(mu);
        received[p].push_back(i);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  size_t total = 0;
  for (auto& [p, seqs] : received) {
    total += seqs.size();
    std::sort(seqs.begin(), seqs.end());
    for (int i = 0; i < static_cast<int>(seqs.size()); ++i) {
      ASSERT_EQ(seqs[i], i) << "producer " << p << " lost or duplicated an item";
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
}

TEST(BoundedQueueTest, PerProducerOrderPreservedWithSingleConsumer) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 10000;
  BoundedQueue<std::pair<int, int>> q(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push({p, i});
    });
  }
  std::vector<int> next(kProducers, 0);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    const auto [p, i] = q.Pop();
    ASSERT_EQ(i, next[p]) << "per-producer FIFO violated";
    ++next[p];
  }
  for (auto& t : producers) t.join();
}

TEST(BoundedQueueTest, PushBatchDrainsInputAndReportsDepth) {
  BoundedQueue<int> q(8);
  std::vector<int> batch{1, 2, 3};
  EXPECT_EQ(q.PushBatch(&batch), 3u);
  EXPECT_TRUE(batch.empty()) << "PushBatch must drain the input vector";
  for (int i = 1; i <= 3; ++i) EXPECT_EQ(q.Pop(), i);
}

TEST(BoundedQueueTest, PushBatchLargerThanCapacityBackpressures) {
  BoundedQueue<int> q(4);
  constexpr int kItems = 100;
  std::thread producer([&q] {
    std::vector<int> batch;
    for (int i = 0; i < kItems; ++i) batch.push_back(i);
    q.PushBatch(&batch);  // must chunk: batch is 25x the capacity
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(q.Pop(), i) << "chunked batch must stay in order";
  }
  producer.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PopBatchRespectsMaxItemsAndOrder) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.PopBatch(&out, 100), 6u) << "PopBatch takes at most what is queued";
  EXPECT_EQ(out.size(), 10u) << "PopBatch appends to the output vector";
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(BoundedQueueTest, DrainIsNonBlockingAndEmptiesTheQueue) {
  BoundedQueue<int> q(8);
  std::vector<int> out;
  EXPECT_EQ(q.Drain(&out), 0u) << "Drain on empty must not block";
  for (int i = 0; i < 5; ++i) q.Push(i);
  EXPECT_EQ(q.Drain(&out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PushBatchFromManyProducersPreservesPerProducerFifo) {
  // The invariant the batched transport layer leans on: whatever interleaving
  // PushBatch chunks produce across producers, each producer's own items
  // arrive in order. Small capacity forces chunking and backpressure.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  constexpr int kBatch = 7;  // deliberately not a divisor of kPerProducer
  BoundedQueue<std::pair<int, int>> q(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::vector<std::pair<int, int>> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        batch.push_back({p, i});
        if (batch.size() == kBatch) q.PushBatch(&batch);
      }
      q.PushBatch(&batch);  // flush the remainder
    });
  }
  std::vector<int> next(kProducers, 0);
  std::vector<std::pair<int, int>> out;
  int received = 0;
  while (received < kProducers * kPerProducer) {
    out.clear();
    q.PopBatch(&out, 32);
    for (const auto& [p, i] : out) {
      ASSERT_EQ(i, next[p]) << "per-producer FIFO violated under PushBatch";
      ++next[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueCloseTest, CloseUnblocksBlockedProducer) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_EQ(q.Push(2), 0u) << "Push into a closed queue must report rejection";
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load()) << "push should be blocked at capacity";
  q.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // The item accepted before Close stays poppable.
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 8), 1u);
  EXPECT_EQ(out, (std::vector<int>{1}));
  EXPECT_EQ(q.PopBatch(&out, 8), 0u) << "closed and drained: PopBatch returns 0";
}

TEST(BoundedQueueCloseTest, CloseUnblocksBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q.PopBatch(&out, 8), 0u);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load()) << "pop should be blocked on empty";
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueCloseTest, PushBatchLeavesUnacceptedRemainder) {
  BoundedQueue<int> q(2);
  q.Close();
  std::vector<int> batch{1, 2, 3};
  q.PushBatch(&batch);
  EXPECT_EQ(batch.size(), 3u) << "nothing accepted into a closed queue";
  BoundedQueue<int> q2(2);
  std::vector<int> batch2{1, 2, 3, 4, 5};
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q2.Close();
  });
  q2.PushBatch(&batch2);  // accepts 2, blocks, then unblocks on Close
  closer.join();
  EXPECT_EQ(batch2.size(), 3u) << "unaccepted tail must remain in the input";
  EXPECT_EQ(batch2.front(), 3);
  std::vector<int> out;
  EXPECT_EQ(q2.PopBatch(&out, 8), 2u) << "accepted prefix must not be lost";
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueueCloseTest, ShutdownRaceLosesNoAcceptedItems) {
  // The failed-task scenario: producers blocked in PushBatch and consumers
  // blocked in PopBatch while the queue is closed mid-flight. Every item a
  // producer reports as accepted must be popped by exactly one consumer;
  // both sides must unblock.
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<std::pair<int, int>> q(4);
    std::vector<int> accepted(kProducers, 0);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::vector<std::pair<int, int>> batch;
        for (int i = 0; i < 50; ++i) batch.push_back({p, i});
        const size_t before = batch.size();
        while (!batch.empty()) {
          const size_t prev = batch.size();
          q.PushBatch(&batch);
          if (batch.size() == prev) break;  // closed: nothing more accepted
        }
        accepted[p] = static_cast<int>(before - batch.size());
      });
    }
    std::mutex mu;
    std::vector<std::vector<int>> popped(kProducers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        std::vector<std::pair<int, int>> out;
        while (true) {
          out.clear();
          if (q.PopBatch(&out, 8) == 0) return;  // closed and drained
          std::lock_guard<std::mutex> lock(mu);
          for (const auto& [p, i] : out) popped[p].push_back(i);
        }
      });
    }
    q.Close();
    for (auto& t : producers) t.join();
    // Consumers must still drain items accepted before the close.
    for (auto& t : consumers) t.join();
    for (int p = 0; p < kProducers; ++p) {
      std::sort(popped[p].begin(), popped[p].end());
      ASSERT_EQ(popped[p].size(), static_cast<size_t>(accepted[p]))
          << "round " << round << ": accepted items lost or duplicated";
      for (int i = 0; i < accepted[p]; ++i) {
        ASSERT_EQ(popped[p][i], i) << "accepted prefix must be contiguous";
      }
    }
  }
}

TEST(BoundedQueueCloseTest, CloseDuringChunkedPushBatchWakesLateConsumers) {
  // Wakeup-protocol regression: a producer whose chunked PushBatch is
  // interrupted by Close can exit with items from an earlier chunk still
  // queued, while a consumer only starts waiting *after* Close's broadcast
  // has come and gone. The producer's exit path must notify based on queue
  // occupancy or that consumer sleeps forever (the test then hangs and
  // trips the ctest timeout). Many rounds to vary the interleaving of the
  // three threads around the chunk boundaries.
  constexpr int kRounds = 400;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> q(2);
    std::atomic<int> accepted{0};
    std::thread producer([&] {
      std::vector<int> batch{0, 1, 2, 3, 4, 5, 6};  // 3.5x capacity: must chunk
      const size_t before = batch.size();
      q.PushBatch(&batch);
      accepted.store(static_cast<int>(before - batch.size()));
    });
    std::thread closer([&] { q.Close(); });
    std::atomic<int> popped{0};
    std::thread consumer([&] {
      std::vector<int> out;
      while (true) {
        out.clear();
        if (q.PopBatch(&out, 3) == 0) return;  // closed and drained
        popped.fetch_add(static_cast<int>(out.size()));
      }
    });
    producer.join();
    closer.join();
    consumer.join();
    ASSERT_EQ(popped.load(), accepted.load())
        << "round " << round << ": accepted items lost";
  }
}

}  // namespace
}  // namespace dssj::stream
