// Snapshot/Restore round trips for every stateful joiner: restoring a blob
// into a fresh instance must reproduce the snapshotted joiner's emissions
// exactly — same pairs, same callback order — for any shared input tail.
// This is the property the supervised executor's checkpoint recovery
// (tests/fault_recovery_test.cc) is built on.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/bundle_joiner.h"
#include "core/record_joiner.h"
#include "core/two_stream_joiner.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 300;  // small universe → dense overlaps
  options.zipf_skew = 0.7;
  options.length = LengthModel::Uniform(1, 20);
  options.duplicate_fraction = 0.35;
  options.mutation_rate = 0.15;
  options.dup_locality = 150;
  options.timestamp_step_us = 1000;
  return WorkloadGenerator(options).Generate(n);
}

/// Feeds `records` (store+probe) and returns the emissions in callback
/// order — order-exact equality is the contract under test.
std::vector<ResultPair> Feed(LocalJoiner& joiner, const std::vector<RecordPtr>& records,
                             size_t begin, size_t end) {
  std::vector<ResultPair> out;
  for (size_t i = begin; i < end; ++i) {
    joiner.Process(records[i], /*store=*/true, /*probe=*/true,
                   [&out](const ResultPair& p) { out.push_back(p); });
  }
  return out;
}

using JoinerFactory = std::function<std::unique_ptr<LocalJoiner>()>;

void CheckRoundTrip(const JoinerFactory& make, uint64_t seed) {
  const std::vector<RecordPtr> stream = MakeStream(seed, 600);
  const size_t cut = 350;

  std::unique_ptr<LocalJoiner> original = make();
  ASSERT_TRUE(original->SupportsSnapshot());
  Feed(*original, stream, 0, cut);

  std::string blob;
  original->Snapshot(&blob);
  std::unique_ptr<LocalJoiner> restored = make();
  restored->Restore(blob);

  EXPECT_EQ(restored->StoredCount(), original->StoredCount());
  EXPECT_EQ(restored->stats().stores, original->stats().stores);
  EXPECT_EQ(restored->stats().results, original->stats().results);
  EXPECT_EQ(restored->stats().probes, original->stats().probes);

  const std::vector<ResultPair> expect = Feed(*original, stream, cut, stream.size());
  const std::vector<ResultPair> got = Feed(*restored, stream, cut, stream.size());
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "emission " << i << " diverged after restore";
  }
}

TEST(CheckpointTest, RecordJoinerUnbounded) {
  CheckRoundTrip(
      [] {
        return std::make_unique<RecordJoiner>(
            SimilaritySpec(SimilarityFunction::kJaccard, 700), WindowSpec::Unbounded());
      },
      1);
}

TEST(CheckpointTest, RecordJoinerCountWindow) {
  CheckRoundTrip(
      [] {
        return std::make_unique<RecordJoiner>(
            SimilaritySpec(SimilarityFunction::kCosine, 750), WindowSpec::ByCount(120));
      },
      2);
}

TEST(CheckpointTest, RecordJoinerTimeWindow) {
  CheckRoundTrip(
      [] {
        return std::make_unique<RecordJoiner>(
            SimilaritySpec(SimilarityFunction::kJaccard, 650),
            WindowSpec::ByTime(180 * 1000));
      },
      3);
}

TEST(CheckpointTest, RecordJoinerSparseIndex) {
  CheckRoundTrip(
      [] {
        RecordJoinerOptions ro;
        ro.direct_index = false;
        return std::make_unique<RecordJoiner>(
            SimilaritySpec(SimilarityFunction::kDice, 700), WindowSpec::Unbounded(), ro);
      },
      4);
}

TEST(CheckpointTest, BundleJoinerUnbounded) {
  CheckRoundTrip(
      [] {
        return std::make_unique<BundleJoiner>(
            SimilaritySpec(SimilarityFunction::kJaccard, 700), WindowSpec::Unbounded());
      },
      5);
}

TEST(CheckpointTest, BundleJoinerCountWindow) {
  CheckRoundTrip(
      [] {
        return std::make_unique<BundleJoiner>(
            SimilaritySpec(SimilarityFunction::kJaccard, 750), WindowSpec::ByCount(100));
      },
      6);
}

TEST(CheckpointTest, BundleJoinerTimeWindowIndividualVerify) {
  CheckRoundTrip(
      [] {
        BundleJoinerOptions bo;
        bo.batch_verify = false;
        return std::make_unique<BundleJoiner>(
            SimilaritySpec(SimilarityFunction::kCosine, 700),
            WindowSpec::ByTime(200 * 1000), bo);
      },
      7);
}

TEST(CheckpointTest, BundleJoinerSparseIndex) {
  CheckRoundTrip(
      [] {
        BundleJoinerOptions bo;
        bo.direct_index = false;
        return std::make_unique<BundleJoiner>(
            SimilaritySpec(SimilarityFunction::kJaccard, 650), WindowSpec::Unbounded(), bo);
      },
      8);
}

TEST(CheckpointTest, BruteForceJoiner) {
  CheckRoundTrip(
      [] {
        return std::make_unique<BruteForceJoiner>(
            SimilaritySpec(SimilarityFunction::kJaccard, 700), WindowSpec::ByCount(80));
      },
      9);
}

TEST(CheckpointTest, EmptyJoinerRoundTrips) {
  for (const auto& make : std::vector<JoinerFactory>{
           [] {
             return std::make_unique<RecordJoiner>(
                 SimilaritySpec(SimilarityFunction::kJaccard, 700),
                 WindowSpec::Unbounded());
           },
           [] {
             return std::make_unique<BundleJoiner>(
                 SimilaritySpec(SimilarityFunction::kJaccard, 700),
                 WindowSpec::Unbounded());
           }}) {
    std::unique_ptr<LocalJoiner> empty = make();
    std::string blob;
    empty->Snapshot(&blob);
    std::unique_ptr<LocalJoiner> restored = make();
    restored->Restore(blob);
    EXPECT_EQ(restored->StoredCount(), 0u);
    const std::vector<RecordPtr> stream = MakeStream(10, 100);
    std::unique_ptr<LocalJoiner> fresh = make();
    const auto a = Feed(*restored, stream, 0, stream.size());
    const auto b = Feed(*fresh, stream, 0, stream.size());
    EXPECT_EQ(a, b) << "restore of an empty snapshot must equal a fresh joiner";
  }
}

TEST(CheckpointTest, RestoreOverwritesPriorState) {
  // Restore must fully replace whatever the instance held, not merge.
  const std::vector<RecordPtr> stream = MakeStream(11, 500);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  RecordJoiner a(sim, WindowSpec::Unbounded());
  Feed(a, stream, 0, 250);
  std::string blob;
  a.Snapshot(&blob);

  RecordJoiner dirty(sim, WindowSpec::Unbounded());
  Feed(dirty, stream, 100, 400);  // different state to be discarded
  dirty.Restore(blob);
  EXPECT_EQ(dirty.StoredCount(), a.StoredCount());
  const auto expect = Feed(a, stream, 250, stream.size());
  const auto got = Feed(dirty, stream, 250, stream.size());
  EXPECT_EQ(got, expect);
}

TEST(CheckpointTest, TwoStreamJoinerRoundTrip) {
  const std::vector<RecordPtr> stream = MakeStream(12, 600);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const auto make = [&] {
    return std::make_unique<TwoStreamJoiner>(sim, WindowSpec::ByCount(150),
                                             WindowSpec::Unbounded());
  };
  // Alternate records between the R and S sides.
  const auto feed = [&](TwoStreamJoiner& j, size_t begin, size_t end) {
    std::vector<TwoStreamJoiner::RsPair> out;
    for (size_t i = begin; i < end; ++i) {
      const auto side = i % 2 == 0 ? TwoStreamJoiner::Side::kR : TwoStreamJoiner::Side::kS;
      j.Process(side, stream[i], [&out](const TwoStreamJoiner::RsPair& p) { out.push_back(p); });
    }
    return out;
  };
  auto original = make();
  feed(*original, 0, 350);
  std::string blob;
  original->Snapshot(&blob);
  auto restored = make();
  restored->Restore(blob);
  EXPECT_EQ(restored->StoredCount(TwoStreamJoiner::Side::kR),
            original->StoredCount(TwoStreamJoiner::Side::kR));
  EXPECT_EQ(restored->StoredCount(TwoStreamJoiner::Side::kS),
            original->StoredCount(TwoStreamJoiner::Side::kS));
  const auto expect = feed(*original, 350, stream.size());
  const auto got = feed(*restored, 350, stream.size());
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(got[i], expect[i]);
}

}  // namespace
}  // namespace dssj
