// Multi-process smoke test: spawns the real dssj_cli coordinator plus
// dssj_worker processes over localhost TCP and requires the printed result
// set to be byte-identical to the single-process run — including a run with
// a scripted mid-stream link disconnect and a remote task kill recovered
// via checkpoint/replay. This is the only test that exercises the actual
// binaries and fork/exec path; net_transport_test covers the same stack
// in-process.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/transport.h"

#ifndef DSSJ_CLI_BIN
#error "build must define DSSJ_CLI_BIN"
#endif
#ifndef DSSJ_WORKER_BIN
#error "build must define DSSJ_WORKER_BIN"
#endif

namespace dssj {
namespace {

/// Deterministic corpus with heavy near-duplicate structure: every line
/// draws words from a small vocabulary by LCG, and every third line mutates
/// the line three back.
std::string WriteCorpus(const std::string& path, int lines) {
  static const char* kWords[] = {"alpha", "bravo", "charlie", "delta",  "echo",  "foxtrot",
                                 "golf",  "hotel", "india",   "juliet", "kilo",  "lima",
                                 "mike",  "nov",   "oscar",   "papa",   "quebec", "romeo"};
  constexpr int kVocab = sizeof(kWords) / sizeof(kWords[0]);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(state >> 33);
  };
  std::vector<std::string> all;
  all.reserve(lines);
  for (int i = 0; i < lines; ++i) {
    std::string line;
    if (i >= 3 && i % 3 == 0) {
      line = all[i - 3];  // near-duplicate: partner for the join
      line += ' ';
      line += kWords[next() % kVocab];
    } else {
      const int n = 3 + static_cast<int>(next() % 8);
      for (int w = 0; w < n; ++w) {
        if (w > 0) line += ' ';
        line += kWords[next() % kVocab];
      }
    }
    all.push_back(line);
  }
  std::ofstream out(path);
  for (const std::string& line : all) out << line << '\n';
  return path;
}

/// fork/execs `argv`, redirecting stdout+stderr to `output_path`.
pid_t Spawn(const std::vector<std::string>& argv, const std::string& output_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  FILE* out = std::fopen(output_path.c_str(), "w");
  if (out != nullptr) {
    ::dup2(fileno(out), STDOUT_FILENO);
    ::dup2(fileno(out), STDERR_FILENO);
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);
  ::execv(cargv[0], cargv.data());
  std::perror("execv");
  ::_exit(127);
}

int WaitFor(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extracts the sorted "line X ~ line Y" result lines from CLI output —
/// the result set, independent of arrival order at the sink.
std::vector<std::string> PairLines(const std::string& output) {
  std::vector<std::string> pairs;
  std::stringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("line ", 0) == 0) pairs.push_back(line);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

class NetSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = WriteCorpus(::testing::TempDir() + "/net_smoke_corpus.txt", 150);
  }

  std::vector<std::string> BaseArgs(const char* bin) {
    return {bin,          corpus_,        "--threshold=500", "--joiners=4",
            "--max-pairs=1000000"};
  }

  /// Runs single-process and 2-worker TCP with identical join flags and
  /// returns (reference pair lines, tcp pair lines) after asserting clean
  /// exits. `extra` is appended to every process's argv.
  void RunBoth(const std::vector<std::string>& extra, std::vector<std::string>* reference,
               std::vector<std::string>* tcp) {
    const std::string dir = ::testing::TempDir();

    std::vector<std::string> single = BaseArgs(DSSJ_CLI_BIN);
    single.insert(single.end(), extra.begin(), extra.end());
    const pid_t single_pid = Spawn(single, dir + "/single.out");
    ASSERT_EQ(WaitFor(single_pid), 0) << ReadFileOrEmpty(dir + "/single.out");
    *reference = PairLines(ReadFileOrEmpty(dir + "/single.out"));
    ASSERT_FALSE(reference->empty()) << "vacuous corpus";

    const std::vector<uint16_t> ports = net::PickFreePorts(2);
    if (ports.empty()) GTEST_SKIP() << "no localhost sockets available";
    const std::string cluster = "127.0.0.1:" + std::to_string(ports[0]) + ",127.0.0.1:" +
                                std::to_string(ports[1]);

    std::vector<std::string> worker = {DSSJ_WORKER_BIN, "--rank=1", "--transport=tcp",
                                       "--connect=" + cluster, "--joiners=4",
                                       "--threshold=500"};
    worker.insert(worker.end(), extra.begin(), extra.end());
    const pid_t worker_pid = Spawn(worker, dir + "/worker.out");

    std::vector<std::string> coord = BaseArgs(DSSJ_CLI_BIN);
    coord.push_back("--transport=tcp");
    coord.push_back("--connect=" + cluster);
    coord.insert(coord.end(), extra.begin(), extra.end());
    const pid_t coord_pid = Spawn(coord, dir + "/coord.out");

    const int coord_exit = WaitFor(coord_pid);
    const int worker_exit = WaitFor(worker_pid);
    ASSERT_EQ(coord_exit, 0) << ReadFileOrEmpty(dir + "/coord.out");
    ASSERT_EQ(worker_exit, 0) << ReadFileOrEmpty(dir + "/worker.out");
    *tcp = PairLines(ReadFileOrEmpty(dir + "/coord.out"));
  }

  std::string corpus_;
};

TEST_F(NetSmokeTest, TwoWorkersMatchSingleProcess) {
  for (const char* batch : {"--batch_size=1", "--batch_size=64"}) {
    std::vector<std::string> reference, tcp;
    RunBoth({batch}, &reference, &tcp);
    if (::testing::Test::IsSkipped()) return;
    EXPECT_EQ(tcp, reference) << batch;
  }
}

TEST_F(NetSmokeTest, DisconnectAndRemoteKillRecoverExactly) {
  // joiner:1 lives on rank 1, so the kill and its checkpoint/replay recovery
  // happen in the worker process while the dispatcher's link to it is also
  // severed mid-stream for 20ms.
  std::vector<std::string> reference, tcp;
  RunBoth({"--fault_script=disconnect:dispatcher:0->joiner:1@50x20000; kill:joiner:1@30",
           "--checkpoint_interval=8"},
          &reference, &tcp);
  if (::testing::Test::IsSkipped()) return;
  EXPECT_EQ(tcp, reference);
}

}  // namespace
}  // namespace dssj
