#include "core/router.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/join_topology.h"
#include "text/record.h"
#include "workload/generator.h"

namespace dssj {
namespace {

RecordPtr RecordOfLength(size_t len, uint64_t seq = 0) {
  std::vector<TokenId> tokens;
  for (size_t i = 0; i < len; ++i) tokens.push_back(static_cast<TokenId>(i * 3 + 1));
  return MakeRecord(seq, seq, std::move(tokens));
}

TEST(LengthRouterTest, StoresExactlyOnceAtTheOwner) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  LengthRouter router(sim, LengthPartition({0, 8, 16, 32}));
  std::vector<RouteTarget> targets;
  for (size_t len = 1; len <= 40; ++len) {
    router.Route(*RecordOfLength(len), targets);
    ASSERT_FALSE(targets.empty()) << "len=" << len;
    int stores = 0;
    for (const RouteTarget& t : targets) {
      EXPECT_TRUE(t.probe);
      if (t.store) {
        ++stores;
        EXPECT_EQ(t.partition, router.partition().PartitionOf(len));
      }
    }
    EXPECT_EQ(stores, 1) << "len=" << len;
  }
}

TEST(LengthRouterTest, ProbeSetCoversEveryPotentialPartnerPartition) {
  // For any two records that could satisfy the predicate, the later one's
  // probe targets must include the partition storing the earlier one.
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  LengthRouter router(sim, LengthPartition({0, 5, 9, 14, 22}));
  std::vector<RouteTarget> targets_r, targets_s;
  for (size_t lr = 1; lr <= 30; ++lr) {
    router.Route(*RecordOfLength(lr), targets_r);
    for (size_t ls = 1; ls <= 30; ++ls) {
      if (!sim.Satisfies(std::min(lr, ls), lr, ls)) continue;  // infeasible pair
      router.Route(*RecordOfLength(ls), targets_s);
      int owner_s = -1;
      for (const RouteTarget& t : targets_s) {
        if (t.store) owner_s = t.partition;
      }
      ASSERT_NE(owner_s, -1);
      bool covered = false;
      for (const RouteTarget& t : targets_r) covered = covered || t.partition == owner_s;
      EXPECT_TRUE(covered) << "lr=" << lr << " ls=" << ls;
    }
  }
}

TEST(LengthRouterTest, DegenerateRecordsGetNoTargets) {
  const SimilaritySpec overlap(SimilarityFunction::kOverlap, 5);
  LengthRouter router(overlap, LengthPartition({0, 8, 64}));
  std::vector<RouteTarget> targets;
  router.Route(*RecordOfLength(0), targets);
  EXPECT_TRUE(targets.empty());
  router.Route(*RecordOfLength(3), targets);  // shorter than the overlap bound
  EXPECT_TRUE(targets.empty());
  router.Route(*RecordOfLength(6), targets);
  EXPECT_FALSE(targets.empty());
}

TEST(BroadcastRouterTest, ProbesEverywhereStoresRoundRobin) {
  BroadcastRouter router(4);
  std::vector<RouteTarget> targets;
  std::vector<int> owners;
  for (int i = 0; i < 8; ++i) {
    router.Route(*RecordOfLength(5, i), targets);
    ASSERT_EQ(targets.size(), 4u);
    int owner = -1;
    for (const RouteTarget& t : targets) {
      EXPECT_TRUE(t.probe);
      if (t.store) owner = t.partition;
    }
    owners.push_back(owner);
  }
  // Round-robin store placement.
  EXPECT_EQ(owners, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(ReplicatedRouterTest, StoresEverywhereProbesRoundRobin) {
  ReplicatedRouter router(3);
  std::vector<RouteTarget> targets;
  std::vector<int> probers;
  for (int i = 0; i < 6; ++i) {
    router.Route(*RecordOfLength(5, i), targets);
    ASSERT_EQ(targets.size(), 3u);
    int prober = -1;
    for (const RouteTarget& t : targets) {
      EXPECT_TRUE(t.store);
      if (t.probe) prober = t.partition;
    }
    probers.push_back(prober);
  }
  EXPECT_EQ(probers, (std::vector<int>{0, 1, 2, 0, 1, 2}));
  router.Route(*RecordOfLength(0), targets);
  EXPECT_TRUE(targets.empty());
}

TEST(PrefixRouterTest, TargetsAreOwnersOfPrefixTokens) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  PrefixRouter router(sim, 5);
  const RecordPtr r = RecordOfLength(20);
  std::vector<RouteTarget> targets;
  router.Route(*r, targets);
  const size_t prefix = sim.PrefixLength(r->size());
  std::set<int> expected;
  for (size_t i = 0; i < prefix; ++i) expected.insert(router.OwnerOf(r->tokens[i]));
  std::set<int> actual;
  for (const RouteTarget& t : targets) {
    EXPECT_TRUE(t.store);
    EXPECT_TRUE(t.probe);
    actual.insert(t.partition);
  }
  EXPECT_EQ(actual, expected);
}

TEST(PrefixRouterTest, TokenFilterAgreesWithOwnerOf) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  PrefixRouter router(sim, 7);
  for (int p = 0; p < 7; ++p) {
    const auto filter = router.TokenFilterFor(p);
    for (TokenId t = 0; t < 500; ++t) {
      EXPECT_EQ(filter(t), router.OwnerOf(t) == p);
    }
  }
}

TEST(PrefixRouterTest, ReplicationGrowsWithLowerThreshold) {
  // Lower thresholds → longer prefixes → more target partitions.
  WorkloadOptions wo = PresetOptions(DatasetPreset::kTweet);
  wo.seed = 77;
  const auto records = WorkloadGenerator(wo).Generate(2000);
  double avg_high = 0, avg_low = 0;
  for (const auto& [threshold, avg] :
       std::vector<std::pair<int64_t, double*>>{{900, &avg_high}, {600, &avg_low}}) {
    PrefixRouter router(SimilaritySpec(SimilarityFunction::kJaccard, threshold), 8);
    std::vector<RouteTarget> targets;
    size_t total = 0, routed = 0;
    for (const RecordPtr& r : records) {
      router.Route(*r, targets);
      if (!targets.empty()) {
        total += targets.size();
        ++routed;
      }
    }
    *avg = static_cast<double>(total) / static_cast<double>(routed);
  }
  EXPECT_GT(avg_low, avg_high);
}

TEST(MakeRouterTest, BuildsTheConfiguredStrategy) {
  DistributedJoinOptions options;
  options.num_joiners = 3;
  options.strategy = DistributionStrategy::kBroadcast;
  EXPECT_EQ(MakeRouter(options)->num_partitions(), 3);
  options.strategy = DistributionStrategy::kPrefixBased;
  EXPECT_EQ(MakeRouter(options)->num_partitions(), 3);
  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition = LengthPartition({0, 4, 9, 30});
  EXPECT_EQ(MakeRouter(options)->num_partitions(), 3);
}

TEST(MakeRouterTest, RejectsMismatchedPartition) {
  DistributedJoinOptions options;
  options.num_joiners = 4;
  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition = LengthPartition({0, 4, 30});  // 2 partitions
  EXPECT_DEATH(MakeRouter(options), "must match num_joiners");
}

}  // namespace
}  // namespace dssj
