// Randomized cross-checking of every joiner and every distribution
// strategy against the brute-force oracle, over many generator seeds and
// adversarial parameter mixes. Complements local_joiner_test /
// distributed_join_test (which sweep the structured grid) with breadth.

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dssj.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

/// A workload whose shape itself is random: universe size, skew, lengths,
/// duplicate behaviour all vary per seed.
std::vector<RecordPtr> RandomStream(uint64_t seed, size_t n) {
  Rng meta(seed * 7919 + 1);
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 50 + meta.Uniform(5000);
  options.zipf_skew = meta.UniformDouble() * 1.2;
  const size_t min_len = 1 + meta.Uniform(4);
  options.length = LengthModel::Uniform(min_len, min_len + 1 + meta.Uniform(40));
  options.duplicate_fraction = meta.UniformDouble() * 0.7;
  options.mutation_rate = meta.UniformDouble() * 0.3;
  options.dup_locality = 50 + meta.Uniform(500);
  return WorkloadGenerator(options).Generate(n);
}

SimilaritySpec RandomSpec(uint64_t seed) {
  Rng meta(seed * 104729 + 3);
  const SimilarityFunction fns[] = {SimilarityFunction::kJaccard,
                                    SimilarityFunction::kCosine, SimilarityFunction::kDice};
  return SimilaritySpec(fns[meta.Uniform(3)], 500 + static_cast<int64_t>(meta.Uniform(501)));
}

WindowSpec RandomWindow(uint64_t seed) {
  Rng meta(seed * 31 + 17);
  switch (meta.Uniform(3)) {
    case 0:
      return WindowSpec::Unbounded();
    case 1:
      return WindowSpec::ByCount(10 + meta.Uniform(300));
    default:
      return WindowSpec::ByTime(static_cast<int64_t>((10 + meta.Uniform(400)) * 1000));
  }
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, AllLocalJoinersAgreeWithBruteForce) {
  const uint64_t seed = GetParam();
  const auto stream = RandomStream(seed, 400);
  const SimilaritySpec sim = RandomSpec(seed);
  const WindowSpec window = RandomWindow(seed);

  BruteForceJoiner oracle(sim, window);
  const auto expected = Canonical(SingleNodeJoin(stream, oracle));

  RecordJoiner record(sim, window);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, record)), expected)
      << "record joiner diverged: seed=" << seed << " " << sim.ToString() << " "
      << window.ToString();

  RecordJoinerOptions with_suffix;
  with_suffix.suffix_filter = true;
  RecordJoiner suffixed(sim, window, with_suffix);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, suffixed)), expected)
      << "suffix-filtered joiner diverged: seed=" << seed;

  BundleJoiner bundle(sim, window);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, bundle)), expected)
      << "bundle joiner diverged: seed=" << seed << " " << sim.ToString() << " "
      << window.ToString();
}

TEST_P(FuzzSeedTest, AllStrategiesAgreeWithBruteForce) {
  const uint64_t seed = GetParam();
  const auto stream = RandomStream(seed, 400);
  const SimilaritySpec sim = RandomSpec(seed);
  // Count windows are per-partition by design; fuzz unbounded + time only.
  Rng meta(seed + 5);
  const WindowSpec window = meta.Bernoulli(0.5)
                                ? WindowSpec::Unbounded()
                                : WindowSpec::ByTime((50 + meta.Uniform(400)) * 1000);

  BruteForceJoiner oracle(sim, window);
  const auto expected = Canonical(SingleNodeJoin(stream, oracle));

  for (const DistributionStrategy strategy :
       {DistributionStrategy::kLengthBased, DistributionStrategy::kPrefixBased,
        DistributionStrategy::kBroadcast, DistributionStrategy::kReplicated}) {
    DistributedJoinOptions options;
    options.sim = sim;
    options.window = window;
    options.strategy = strategy;
    options.num_joiners = 1 + static_cast<int>(meta.Uniform(7));
    options.collect_results = true;
    if (strategy == DistributionStrategy::kLengthBased) {
      options.length_partition = PlanLengthPartition(
          stream, sim, options.num_joiners,
          meta.Bernoulli(0.5) ? PartitionMethod::kLoadAwareGreedy
                              : PartitionMethod::kEqualFrequency);
    }
    const DistributedJoinResult result = RunDistributedJoin(stream, options);
    EXPECT_EQ(Canonical(result.pairs), expected)
        << DistributionStrategyName(strategy) << " diverged: seed=" << seed << " "
        << sim.ToString() << " k=" << options.num_joiners;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace dssj
