// Randomized cross-checking of every joiner and every distribution
// strategy against the brute-force oracle, over many generator seeds and
// adversarial parameter mixes. Complements local_joiner_test /
// distributed_join_test (which sweep the structured grid) with breadth.

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/verify.h"
#include "dssj.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

/// A workload whose shape itself is random: universe size, skew, lengths,
/// duplicate behaviour all vary per seed.
std::vector<RecordPtr> RandomStream(uint64_t seed, size_t n) {
  Rng meta(seed * 7919 + 1);
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 50 + meta.Uniform(5000);
  options.zipf_skew = meta.UniformDouble() * 1.2;
  const size_t min_len = 1 + meta.Uniform(4);
  options.length = LengthModel::Uniform(min_len, min_len + 1 + meta.Uniform(40));
  options.duplicate_fraction = meta.UniformDouble() * 0.7;
  options.mutation_rate = meta.UniformDouble() * 0.3;
  options.dup_locality = 50 + meta.Uniform(500);
  return WorkloadGenerator(options).Generate(n);
}

SimilaritySpec RandomSpec(uint64_t seed) {
  Rng meta(seed * 104729 + 3);
  const SimilarityFunction fns[] = {SimilarityFunction::kJaccard,
                                    SimilarityFunction::kCosine, SimilarityFunction::kDice};
  return SimilaritySpec(fns[meta.Uniform(3)], 500 + static_cast<int64_t>(meta.Uniform(501)));
}

WindowSpec RandomWindow(uint64_t seed) {
  Rng meta(seed * 31 + 17);
  switch (meta.Uniform(3)) {
    case 0:
      return WindowSpec::Unbounded();
    case 1:
      return WindowSpec::ByCount(10 + meta.Uniform(300));
    default:
      return WindowSpec::ByTime(static_cast<int64_t>((10 + meta.Uniform(400)) * 1000));
  }
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, AllLocalJoinersAgreeWithBruteForce) {
  const uint64_t seed = GetParam();
  const auto stream = RandomStream(seed, 400);
  const SimilaritySpec sim = RandomSpec(seed);
  const WindowSpec window = RandomWindow(seed);

  BruteForceJoiner oracle(sim, window);
  const auto expected = Canonical(SingleNodeJoin(stream, oracle));

  RecordJoiner record(sim, window);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, record)), expected)
      << "record joiner diverged: seed=" << seed << " " << sim.ToString() << " "
      << window.ToString();

  RecordJoinerOptions with_suffix;
  with_suffix.suffix_filter = true;
  RecordJoiner suffixed(sim, window, with_suffix);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, suffixed)), expected)
      << "suffix-filtered joiner diverged: seed=" << seed;

  BundleJoiner bundle(sim, window);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, bundle)), expected)
      << "bundle joiner diverged: seed=" << seed << " " << sim.ToString() << " "
      << window.ToString();
}

TEST_P(FuzzSeedTest, AllStrategiesAgreeWithBruteForce) {
  const uint64_t seed = GetParam();
  const auto stream = RandomStream(seed, 400);
  const SimilaritySpec sim = RandomSpec(seed);
  // Count windows are per-partition by design; fuzz unbounded + time only.
  Rng meta(seed + 5);
  const WindowSpec window = meta.Bernoulli(0.5)
                                ? WindowSpec::Unbounded()
                                : WindowSpec::ByTime((50 + meta.Uniform(400)) * 1000);

  BruteForceJoiner oracle(sim, window);
  const auto expected = Canonical(SingleNodeJoin(stream, oracle));

  for (const DistributionStrategy strategy :
       {DistributionStrategy::kLengthBased, DistributionStrategy::kPrefixBased,
        DistributionStrategy::kBroadcast, DistributionStrategy::kReplicated}) {
    DistributedJoinOptions options;
    options.sim = sim;
    options.window = window;
    options.strategy = strategy;
    options.num_joiners = 1 + static_cast<int>(meta.Uniform(7));
    options.collect_results = true;
    if (strategy == DistributionStrategy::kLengthBased) {
      options.length_partition = PlanLengthPartition(
          stream, sim, options.num_joiners,
          meta.Bernoulli(0.5) ? PartitionMethod::kLoadAwareGreedy
                              : PartitionMethod::kEqualFrequency);
    }
    const DistributedJoinResult result = RunDistributedJoin(stream, options);
    EXPECT_EQ(Canonical(result.pairs), expected)
        << DistributionStrategyName(strategy) << " diverged: seed=" << seed << " "
        << sim.ToString() << " k=" << options.num_joiners;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range<uint64_t>(1, 25));

std::vector<TokenId> RandomSortedTokens(Rng& rng, size_t len, uint32_t universe) {
  std::vector<TokenId> t;
  t.reserve(len);
  for (size_t i = 0; i < len; ++i) t.push_back(static_cast<TokenId>(rng.Uniform(universe)));
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

/// The block/SIMD/gallop kernel against the scalar reference loop, over
/// random sorted pairs covering every dispatch path: empty sides, identical
/// arrays, disjoint ranges, >= 16x length skew (galloping), and general
/// overlapping pairs — each with and without a `required` early-exit bound.
TEST(VerifyKernelFuzzTest, BlockKernelMatchesScalarReference) {
  ASSERT_EQ(GetVerifyKernel(), VerifyKernel::kBlock) << "kBlock is the default";
  Rng rng(987654321);
  for (int iter = 0; iter < 10000; ++iter) {
    std::vector<TokenId> a, b;
    switch (iter % 5) {
      case 0: {  // one or both sides empty
        a = RandomSortedTokens(rng, rng.Uniform(2) * rng.Uniform(20), 64);
        b = rng.Bernoulli(0.5) ? std::vector<TokenId>{} : RandomSortedTokens(rng, 10, 64);
        break;
      }
      case 1: {  // identical
        a = RandomSortedTokens(rng, 1 + rng.Uniform(200), 1024);
        b = a;
        break;
      }
      case 2: {  // disjoint value ranges
        a = RandomSortedTokens(rng, 1 + rng.Uniform(100), 500);
        b = RandomSortedTokens(rng, 1 + rng.Uniform(100), 500);
        for (TokenId& w : b) w += 1000;
        break;
      }
      case 3: {  // skewed >= 16x: exercises the galloping path
        a = RandomSortedTokens(rng, 1 + rng.Uniform(8), 4096);
        b = RandomSortedTokens(rng, 16 * (a.size() + 1) + rng.Uniform(400), 4096);
        if (rng.Bernoulli(0.5)) std::swap(a, b);
        break;
      }
      default: {  // general overlapping pairs, small universe forces matches
        const uint32_t universe = 16 + static_cast<uint32_t>(rng.Uniform(200));
        a = RandomSortedTokens(rng, rng.Uniform(120), universe);
        b = RandomSortedTokens(rng, rng.Uniform(120), universe);
        break;
      }
    }

    const size_t exact =
        VerifyOverlapScalar(a.data(), a.size(), b.data(), b.size(), /*required=*/0);

    // required == 0 disables early exit: the kernel must be exact.
    ASSERT_EQ(VerifyOverlap(a.data(), a.size(), b.data(), b.size(), 0), exact)
        << "iter=" << iter << " |a|=" << a.size() << " |b|=" << b.size();

    // With a bound, both kernels must agree on the accept/reject decision,
    // and an accepted result must be the exact overlap.
    const size_t required = rng.Uniform(std::max(a.size(), b.size()) + 3);
    const size_t got = VerifyOverlap(a.data(), a.size(), b.data(), b.size(), required);
    const size_t ref = VerifyOverlapScalar(a.data(), a.size(), b.data(), b.size(), required);
    ASSERT_EQ(got >= required, ref >= required)
        << "decision diverged: iter=" << iter << " required=" << required;
    if (required > 0 && got >= required) {
      ASSERT_EQ(got, exact) << "accepted result must be exact: iter=" << iter;
    }

    // IntersectCount runs the same kernel with no bound: exact in both modes.
    SetVerifyKernel(VerifyKernel::kScalar);
    const size_t scalar_count = IntersectCount(a, b);
    SetVerifyKernel(VerifyKernel::kBlock);
    ASSERT_EQ(IntersectCount(a, b), scalar_count) << "iter=" << iter;
    ASSERT_EQ(scalar_count, exact) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace dssj
