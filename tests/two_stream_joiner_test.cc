#include "core/two_stream_joiner.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace dssj {
namespace {

using Side = TwoStreamJoiner::Side;
using RsPair = TwoStreamJoiner::RsPair;

std::vector<RsPair> Canonical(std::vector<RsPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const RsPair& a, const RsPair& b) {
    return std::tie(a.r_seq, a.s_seq) < std::tie(b.r_seq, b.s_seq);
  });
  return pairs;
}

/// Brute-force reference over an interleaved (side, record) sequence.
std::vector<RsPair> BruteForceRs(
    const std::vector<std::pair<Side, RecordPtr>>& interleaved, const SimilaritySpec& sim,
    const WindowSpec& r_window, const WindowSpec& s_window) {
  std::vector<RsPair> pairs;
  std::vector<RecordPtr> r_store, s_store;
  for (const auto& [side, rec] : interleaved) {
    if (rec->size() == 0) continue;
    // Evict by time against the arriving record's timestamp (both sides,
    // matching the joiner's behaviour of evicting the probed side too).
    auto evict = [&](std::vector<RecordPtr>& store, const WindowSpec& w) {
      store.erase(std::remove_if(store.begin(), store.end(),
                                 [&](const RecordPtr& s) {
                                   return w.ExpiredByTime(s->timestamp, rec->timestamp);
                                 }),
                  store.end());
    };
    evict(r_store, r_window);
    evict(s_store, s_window);
    const auto& partners = side == Side::kR ? s_store : r_store;
    for (const RecordPtr& partner : partners) {
      const size_t o = OverlapSize(rec->tokens, partner->tokens);
      if (sim.Satisfies(o, rec->size(), partner->size())) {
        if (side == Side::kR) {
          pairs.push_back(RsPair{rec->id, rec->seq, partner->id, partner->seq});
        } else {
          pairs.push_back(RsPair{partner->id, partner->seq, rec->id, rec->seq});
        }
      }
    }
    auto& own = side == Side::kR ? r_store : s_store;
    own.push_back(rec);
    // Count windows: evict oldest beyond capacity.
    const WindowSpec& w = side == Side::kR ? r_window : s_window;
    while (w.OverCount(own.size() - 1)) own.erase(own.begin());
  }
  return pairs;
}

std::vector<std::pair<Side, RecordPtr>> InterleavedStreams(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.length = LengthModel::Uniform(2, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  WorkloadGenerator gen(options);
  Rng side_rng(seed + 99);
  std::vector<std::pair<Side, RecordPtr>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(side_rng.Bernoulli(0.5) ? Side::kR : Side::kS, gen.Next());
  }
  return out;
}

TEST(TwoStreamJoinerTest, MatchesBruteForceUnbounded) {
  for (uint64_t seed : {81u, 82u, 83u}) {
    const auto interleaved = InterleavedStreams(seed, 700);
    const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
    TwoStreamJoiner joiner(sim, WindowSpec::Unbounded(), WindowSpec::Unbounded());
    std::vector<RsPair> pairs;
    for (const auto& [side, rec] : interleaved) {
      joiner.Process(side, rec, [&pairs](const RsPair& p) { pairs.push_back(p); });
    }
    const auto expected = Canonical(
        BruteForceRs(interleaved, sim, WindowSpec::Unbounded(), WindowSpec::Unbounded()));
    EXPECT_EQ(Canonical(pairs), expected) << "seed=" << seed;
    EXPECT_GT(expected.size(), 0u);
  }
}

TEST(TwoStreamJoinerTest, NoSameStreamPairsEver) {
  const auto interleaved = InterleavedStreams(84, 800);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 600);
  TwoStreamJoiner joiner(sim, WindowSpec::Unbounded(), WindowSpec::Unbounded());
  std::vector<uint64_t> r_seqs, s_seqs;
  for (const auto& [side, rec] : interleaved) {
    (side == Side::kR ? r_seqs : s_seqs).push_back(rec->seq);
  }
  joiner.Process(Side::kR, MakeRecord(9999, 9999, {1, 2, 3}),
                 [](const RsPair&) {});  // warm-up no-op
  std::vector<RsPair> pairs;
  TwoStreamJoiner fresh(sim, WindowSpec::Unbounded(), WindowSpec::Unbounded());
  for (const auto& [side, rec] : interleaved) {
    fresh.Process(side, rec, [&pairs](const RsPair& p) { pairs.push_back(p); });
  }
  for (const RsPair& p : pairs) {
    EXPECT_TRUE(std::count(r_seqs.begin(), r_seqs.end(), p.r_seq) == 1)
        << "r side of pair not from stream R";
    EXPECT_TRUE(std::count(s_seqs.begin(), s_seqs.end(), p.s_seq) == 1)
        << "s side of pair not from stream S";
  }
}

TEST(TwoStreamJoinerTest, AsymmetricWindows) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 1000);
  // R keeps 1 record, S keeps plenty.
  TwoStreamJoiner joiner(sim, WindowSpec::ByCount(1), WindowSpec::ByCount(100));
  std::vector<RsPair> pairs;
  const auto cb = [&pairs](const RsPair& p) { pairs.push_back(p); };
  joiner.Process(Side::kR, MakeRecord(0, 0, {1, 2, 3}), cb);
  joiner.Process(Side::kR, MakeRecord(1, 1, {4, 5, 6}), cb);  // evicts R seq 0
  EXPECT_EQ(joiner.StoredCount(Side::kR), 1u);
  joiner.Process(Side::kS, MakeRecord(2, 2, {1, 2, 3}), cb);
  EXPECT_TRUE(pairs.empty()) << "matched an evicted R record";
  joiner.Process(Side::kS, MakeRecord(3, 3, {4, 5, 6}), cb);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].r_seq, 1u);
  EXPECT_EQ(pairs[0].s_seq, 3u);
}

TEST(TwoStreamJoinerTest, TimeWindowsMatchBruteForce) {
  const auto interleaved = InterleavedStreams(85, 900);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const WindowSpec r_window = WindowSpec::ByTime(120 * 1000);
  const WindowSpec s_window = WindowSpec::ByTime(300 * 1000);
  TwoStreamJoiner joiner(sim, r_window, s_window);
  std::vector<RsPair> pairs;
  for (const auto& [side, rec] : interleaved) {
    joiner.Process(side, rec, [&pairs](const RsPair& p) { pairs.push_back(p); });
  }
  EXPECT_EQ(Canonical(pairs),
            Canonical(BruteForceRs(interleaved, sim, r_window, s_window)));
}

TEST(TwoStreamJoinerTest, StatsSplitPerSide) {
  TwoStreamJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                         WindowSpec::Unbounded(), WindowSpec::Unbounded());
  const auto cb = [](const RsPair&) {};
  joiner.Process(Side::kR, MakeRecord(0, 0, {1, 2}), cb);
  joiner.Process(Side::kR, MakeRecord(1, 1, {3, 4}), cb);
  joiner.Process(Side::kS, MakeRecord(2, 2, {1, 2}), cb);
  EXPECT_EQ(joiner.StoredCount(Side::kR), 2u);
  EXPECT_EQ(joiner.StoredCount(Side::kS), 1u);
  EXPECT_EQ(joiner.stats(Side::kR).stores, 2u);
  EXPECT_EQ(joiner.stats(Side::kS).stores, 1u);
  EXPECT_GT(joiner.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace dssj
