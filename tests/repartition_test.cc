#include "core/repartition.h"

#include <gtest/gtest.h>

#include "core/join_topology.h"
#include "workload/drift.h"
#include "workload/generator.h"

namespace dssj {
namespace {

TEST(DecayingLengthHistogramTest, TracksRecentDistribution) {
  DecayingLengthHistogram h(/*half_life_records=*/100);
  // Old regime: length 10.
  for (int i = 0; i < 2000; ++i) h.Add(10);
  // New regime: length 50; after many half-lives the old mass is gone.
  for (int i = 0; i < 2000; ++i) h.Add(50);
  const LengthHistogram snapshot = h.Snapshot();
  ASSERT_GT(snapshot.TotalRecords(), 0u);
  EXPECT_GT(snapshot.CountAt(50), snapshot.CountAt(10) * 100);
}

TEST(DecayingLengthHistogramTest, RenormalizationKeepsShape) {
  DecayingLengthHistogram h(/*half_life_records=*/4);  // aggressive growth
  for (int i = 0; i < 100000; ++i) h.Add(static_cast<size_t>(5 + i % 2));
  const LengthHistogram snapshot = h.Snapshot();
  // Both lengths alternate, so their decayed masses are within a factor ~2.
  EXPECT_GT(snapshot.CountAt(5), 0u);
  EXPECT_GT(snapshot.CountAt(6), 0u);
  const double ratio = static_cast<double>(snapshot.CountAt(6)) /
                       static_cast<double>(snapshot.CountAt(5));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 3.0);
}

TEST(DecayingLengthHistogramTest, EffectiveCountSaturatesNearHalfLifeBudget) {
  DecayingLengthHistogram h(/*half_life_records=*/1000);
  for (int i = 0; i < 100000; ++i) h.Add(7);
  // Σ 2^(-i/1000) → 1/(1−2^(−1/1000)) ≈ 1443.
  EXPECT_NEAR(h.EffectiveCount(), 1443.0, 30.0);
}

TEST(RepartitionAdvisorTest, RecommendsReplanAfterDrift) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  WorkloadOptions base = PresetOptions(DatasetPreset::kTweet);
  base.seed = 51;
  WorkloadGenerator gen(base);
  const auto head = gen.Generate(10000);
  const LengthPartition initial =
      PlanLengthPartition(head, sim, 8, PartitionMethod::kLoadAwareGreedy);

  RepartitionAdvisor advisor(sim, 8);
  // Feed a drifted stream: lengths tripled.
  WorkloadOptions drifted = base;
  drifted.seed = 52;
  drifted.length = LengthModel::LogNormal(base.length.mean * 3, 0.45, 2, 160);
  WorkloadGenerator gen2(drifted);
  LengthHistogram stored;
  for (int i = 0; i < 20000; ++i) {
    const RecordPtr r = gen2.Next();
    advisor.ObserveLength(r->size());
    stored.Add(r->size());
  }
  const MigrationPlan plan = advisor.Evaluate(initial, stored);
  EXPECT_GT(plan.improvement_factor, 1.2) << "drift should make the old partition bad";
  EXPECT_GT(plan.records_to_move, 0u);
  EXPECT_GT(plan.bytes_to_move, plan.records_to_move * 24);
  EXPECT_LE(plan.new_bottleneck, plan.current_bottleneck);
}

TEST(RepartitionAdvisorTest, NoReplanOnStationaryStream) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  WorkloadOptions base = PresetOptions(DatasetPreset::kTweet);
  base.seed = 53;
  WorkloadGenerator gen(base);
  const auto head = gen.Generate(15000);
  const LengthPartition initial =
      PlanLengthPartition(head, sim, 8, PartitionMethod::kLoadAwareGreedy);

  RepartitionAdvisor advisor(sim, 8);
  LengthHistogram stored;
  for (int i = 0; i < 15000; ++i) {
    const RecordPtr r = gen.Next();
    advisor.ObserveLength(r->size());
    stored.Add(r->size());
  }
  const MigrationPlan plan = advisor.Evaluate(initial, stored);
  EXPECT_LT(plan.improvement_factor, 1.2);
  EXPECT_FALSE(plan.recommended);
}

TEST(RepartitionAdvisorTest, PolicyVetoesExpensiveMoves) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  RepartitionPolicy strict;
  strict.max_move_fraction = 0.0;  // never move anything
  RepartitionAdvisor advisor(sim, 4, strict);
  for (int i = 0; i < 5000; ++i) advisor.ObserveLength(10 + i % 40);
  LengthHistogram stored;
  for (int i = 0; i < 5000; ++i) stored.Add(10 + i % 40);
  // A terrible current partition: everything in one interval.
  const MigrationPlan plan = advisor.Evaluate(LengthPartition({0, 1, 2, 3, 1000}), stored);
  EXPECT_GT(plan.improvement_factor, 1.2);
  EXPECT_FALSE(plan.recommended) << "policy must veto despite the improvement";
}

TEST(RepartitionAdvisorTest, EmptyMonitorIsInert) {
  RepartitionAdvisor advisor(SimilaritySpec(SimilarityFunction::kJaccard, 800), 4);
  const LengthPartition current({0, 5, 10, 15, 100});
  const MigrationPlan plan = advisor.Evaluate(current, LengthHistogram());
  EXPECT_FALSE(plan.recommended);
  EXPECT_EQ(plan.new_partition.bounds(), current.bounds());
}

// --- Drifting generator -------------------------------------------------------

TEST(DriftingGeneratorTest, LengthMeanMoves) {
  DriftOptions options;
  options.base = PresetOptions(DatasetPreset::kTweet);
  options.base.seed = 54;
  options.base.duplicate_fraction = 0.0;
  options.end_length_mean = options.base.length.mean * 4;
  options.drift_records = 20000;
  DriftingGenerator gen(options);
  double head_mean = 0, tail_mean = 0;
  for (int i = 0; i < 25000; ++i) {
    const RecordPtr r = gen.Next();
    if (i < 3000) head_mean += static_cast<double>(r->size());
    if (i >= 22000) tail_mean += static_cast<double>(r->size());
  }
  head_mean /= 3000;
  tail_mean /= 3000;
  EXPECT_GT(tail_mean, head_mean * 2.5);
  EXPECT_DOUBLE_EQ(gen.Progress(), 1.0);
}

TEST(DriftingGeneratorTest, TokenRotationShiftsPopularTokens) {
  DriftOptions options;
  options.base.seed = 55;
  options.base.token_universe = 10000;
  options.base.zipf_skew = 1.0;
  options.base.duplicate_fraction = 0.0;
  options.token_rotation = 5000;
  options.drift_records = 20000;
  DriftingGenerator gen(options);
  std::vector<uint64_t> head_freq(10000, 0), tail_freq(10000, 0);
  for (int i = 0; i < 22000; ++i) {
    const RecordPtr r = gen.Next();
    auto& freq = i < 2000 ? head_freq : (i >= 20000 ? tail_freq : head_freq);
    if (i < 2000 || i >= 20000) {
      for (TokenId t : r->tokens) ++freq[t];
    }
  }
  // The head's hottest token should no longer be the tail's hottest.
  const size_t head_top =
      std::max_element(head_freq.begin(), head_freq.end()) - head_freq.begin();
  const size_t tail_top =
      std::max_element(tail_freq.begin(), tail_freq.end()) - tail_freq.begin();
  EXPECT_NE(head_top, tail_top);
}

TEST(DriftingGeneratorTest, NoDriftReducesToBaseGenerator) {
  DriftOptions options;
  options.base.seed = 56;
  DriftingGenerator drifting(options);
  WorkloadGenerator plain(options.base);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(drifting.Next()->tokens, plain.Next()->tokens);
  }
}

}  // namespace
}  // namespace dssj
