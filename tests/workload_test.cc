#include "workload/generator.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/brute_force_joiner.h"
#include "core/join_topology.h"
#include "text/corpus.h"

namespace dssj {
namespace {

TEST(LengthModelTest, SamplesRespectBounds) {
  Rng rng(1);
  for (const LengthModel model :
       {LengthModel::Uniform(3, 9), LengthModel::LogNormal(10, 0.8, 3, 9),
        LengthModel::Normal(6, 4, 3, 9)}) {
    for (int i = 0; i < 5000; ++i) {
      const size_t l = model.Sample(rng);
      ASSERT_GE(l, 3u);
      ASSERT_LE(l, 9u);
    }
  }
}

TEST(LengthModelTest, LogNormalMeanIsApproximatelyRight) {
  Rng rng(2);
  const LengthModel model = LengthModel::LogNormal(20, 0.5, 1, 1000);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(static_cast<double>(model.Sample(rng)));
  EXPECT_NEAR(stat.mean(), 20.0, 1.5);
}

TEST(WorkloadGeneratorTest, DeterministicGivenSeed) {
  WorkloadOptions options;
  options.seed = 99;
  const auto a = WorkloadGenerator(options).Generate(200);
  const auto b = WorkloadGenerator(options).Generate(200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->tokens, b[i]->tokens);
    EXPECT_EQ(a[i]->seq, i);
    EXPECT_EQ(a[i]->timestamp, static_cast<int64_t>(i) * options.timestamp_step_us);
  }
  WorkloadOptions other = options;
  other.seed = 100;
  const auto c = WorkloadGenerator(other).Generate(200);
  size_t differing = 0;
  for (size_t i = 0; i < a.size(); ++i) differing += a[i]->tokens != c[i]->tokens;
  EXPECT_GT(differing, 150u);
}

TEST(WorkloadGeneratorTest, RecordsAreNormalizedSets) {
  WorkloadOptions options;
  options.seed = 3;
  options.duplicate_fraction = 0.5;
  for (const RecordPtr& r : WorkloadGenerator(options).Generate(2000)) {
    EXPECT_TRUE(std::is_sorted(r->tokens.begin(), r->tokens.end()));
    EXPECT_TRUE(std::adjacent_find(r->tokens.begin(), r->tokens.end()) == r->tokens.end());
    for (TokenId t : r->tokens) EXPECT_LT(t, options.token_universe);
  }
}

TEST(WorkloadGeneratorTest, SmallTokenIdsAreRare) {
  WorkloadOptions options;
  options.seed = 4;
  options.zipf_skew = 1.0;
  options.token_universe = 10000;
  options.duplicate_fraction = 0.0;
  std::vector<uint64_t> freq(10000, 0);
  for (const RecordPtr& r : WorkloadGenerator(options).Generate(5000)) {
    for (TokenId t : r->tokens) ++freq[t];
  }
  // The top id (most frequent rank) must dominate the bottom id.
  uint64_t low_mass = 0, high_mass = 0;
  for (size_t i = 0; i < 100; ++i) low_mass += freq[i];
  for (size_t i = 9900; i < 10000; ++i) high_mass += freq[i];
  EXPECT_GT(high_mass, low_mass * 5);
}

TEST(WorkloadGeneratorTest, DuplicateFractionDrivesJoinDensity) {
  auto count_results = [](double dup_fraction) {
    WorkloadOptions options;
    options.seed = 5;
    options.token_universe = 5000;
    options.length = LengthModel::Uniform(5, 20);
    options.duplicate_fraction = dup_fraction;
    options.mutation_rate = 0.05;
    const auto stream = WorkloadGenerator(options).Generate(3000);
    BruteForceJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                            WindowSpec::Unbounded());
    return SingleNodeJoin(stream, joiner).size();
  };
  const size_t none = count_results(0.0);
  const size_t some = count_results(0.3);
  const size_t many = count_results(0.6);
  EXPECT_LT(none, some);
  EXPECT_LT(some, many);
  EXPECT_GT(many, 100u);
}

TEST(WorkloadGeneratorTest, PresetsHaveDistinctProfiles) {
  CorpusStats stats[4];
  int i = 0;
  for (const DatasetPreset preset : {DatasetPreset::kAol, DatasetPreset::kTweet,
                                     DatasetPreset::kEnron, DatasetPreset::kDblp}) {
    WorkloadOptions options = PresetOptions(preset);
    options.seed = 6;
    stats[i++] = ComputeCorpusStats(WorkloadGenerator(options).Generate(4000));
  }
  // AOL: very short; ENRON: much longer than everything else.
  EXPECT_LT(stats[0].avg_length, 6.0);
  EXPECT_GT(stats[2].avg_length, 4 * stats[1].avg_length);
  EXPECT_GT(stats[2].max_length, 300u);
  // DBLP and TWEET sit between.
  EXPECT_GT(stats[1].avg_length, stats[0].avg_length);
  EXPECT_GT(stats[3].avg_length, stats[0].avg_length);
}

TEST(WorkloadGeneratorTest, PresetNamesAreStable) {
  EXPECT_STREQ(DatasetPresetName(DatasetPreset::kAol), "AOL");
  EXPECT_STREQ(DatasetPresetName(DatasetPreset::kEnron), "ENRON");
}

TEST(WorkloadGeneratorTest, NextAndGenerateAgree) {
  WorkloadOptions options;
  options.seed = 7;
  WorkloadGenerator a(options);
  WorkloadGenerator b(options);
  const auto batch = b.Generate(50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next()->tokens, batch[i]->tokens);
  }
}

}  // namespace
}  // namespace dssj
