// Tests of the extension features: the PPJoin+ suffix filter inside
// RecordJoiner and the MinHash-LSH approximate joiner.

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/join_topology.h"
#include "core/minhash_joiner.h"
#include "core/record_joiner.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n, double dup_fraction) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 2000;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(4, 40);
  options.duplicate_fraction = dup_fraction;
  options.mutation_rate = 0.10;
  options.dup_locality = 400;
  return WorkloadGenerator(options).Generate(n);
}

// --- Suffix filter ----------------------------------------------------------

TEST(SuffixFilterTest, PreservesResultsExactly) {
  const auto stream = MakeStream(41, 1500, 0.4);
  for (const int64_t threshold : {600, 750, 900}) {
    const SimilaritySpec sim(SimilarityFunction::kJaccard, threshold);
    RecordJoinerOptions with;
    with.suffix_filter = true;
    RecordJoiner a(sim, WindowSpec::Unbounded(), with);
    RecordJoiner b(sim, WindowSpec::Unbounded());
    EXPECT_EQ(Canonical(SingleNodeJoin(stream, a)), Canonical(SingleNodeJoin(stream, b)))
        << "threshold " << threshold;
  }
}

TEST(SuffixFilterTest, ActuallyPrunesAndSavesMergeWork) {
  const auto stream = MakeStream(42, 2500, 0.4);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  RecordJoinerOptions with;
  with.suffix_filter = true;
  RecordJoiner a(sim, WindowSpec::Unbounded(), with);
  RecordJoiner b(sim, WindowSpec::Unbounded());
  SingleNodeJoin(stream, a);
  SingleNodeJoin(stream, b);
  EXPECT_GT(a.stats().suffix_filtered, 0u);
  EXPECT_LT(a.stats().verify.full_verifications, b.stats().verify.full_verifications);
  EXPECT_EQ(b.stats().suffix_filtered, 0u);
}

TEST(SuffixFilterTest, DepthSweepStaysCorrect) {
  const auto stream = MakeStream(43, 800, 0.5);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  BruteForceJoiner reference(sim, WindowSpec::Unbounded());
  const auto expected = Canonical(SingleNodeJoin(stream, reference));
  for (int depth = 0; depth <= 6; ++depth) {
    RecordJoinerOptions options;
    options.suffix_filter = true;
    options.suffix_filter_depth = depth;
    RecordJoiner joiner(sim, WindowSpec::Unbounded(), options);
    EXPECT_EQ(Canonical(SingleNodeJoin(stream, joiner)), expected) << "depth " << depth;
  }
}

// --- MinHash-LSH approximate joiner ------------------------------------------

TEST(MinHashJoinerTest, PerfectPrecision) {
  const auto stream = MakeStream(44, 2000, 0.5);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  MinHashJoiner approx(sim, WindowSpec::Unbounded());
  BruteForceJoiner reference(sim, WindowSpec::Unbounded());
  const auto approx_pairs = Canonical(SingleNodeJoin(stream, approx));
  const auto exact_pairs = Canonical(SingleNodeJoin(stream, reference));
  std::set<std::pair<uint64_t, uint64_t>> exact_set;
  for (const ResultPair& p : exact_pairs) exact_set.insert({p.probe_seq, p.partner_seq});
  for (const ResultPair& p : approx_pairs) {
    EXPECT_TRUE(exact_set.count({p.probe_seq, p.partner_seq}))
        << "false positive " << p.probe_seq << "," << p.partner_seq;
  }
  EXPECT_LE(approx_pairs.size(), exact_pairs.size());
}

TEST(MinHashJoinerTest, HighRecallAtHighSimilarity) {
  // At threshold 0.9 with 16 bands × 4 rows, P(candidate) >= 1-(1-0.9^4)^16
  // ≈ 0.9998; recall should be near-perfect.
  const auto stream = MakeStream(45, 3000, 0.5);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 900);
  MinHashJoiner approx(sim, WindowSpec::Unbounded());
  BruteForceJoiner reference(sim, WindowSpec::Unbounded());
  const size_t found = SingleNodeJoin(stream, approx).size();
  const size_t truth = SingleNodeJoin(stream, reference).size();
  ASSERT_GT(truth, 50u) << "vacuous stream";
  EXPECT_GE(static_cast<double>(found), 0.95 * static_cast<double>(truth));
}

TEST(MinHashJoinerTest, MoreBandsMoreRecall) {
  const auto stream = MakeStream(46, 3000, 0.5);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  MinHashJoinerOptions few, many;
  few.bands = 2;
  many.bands = 32;
  MinHashJoiner a(sim, WindowSpec::Unbounded(), few);
  MinHashJoiner b(sim, WindowSpec::Unbounded(), many);
  const size_t recall_few = SingleNodeJoin(stream, a).size();
  const size_t recall_many = SingleNodeJoin(stream, b).size();
  EXPECT_LT(recall_few, recall_many);
}

TEST(MinHashJoinerTest, WindowEvictionWorks) {
  MinHashJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 900),
                       WindowSpec::ByCount(2));
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {1, 2, 3, 4}), true, true, cb);
  joiner.Process(MakeRecord(1, 1, {10, 20, 30}), true, true, cb);
  joiner.Process(MakeRecord(2, 2, {40, 50, 60}), true, true, cb);  // evicts seq 0
  EXPECT_EQ(joiner.StoredCount(), 2u);
  joiner.Process(MakeRecord(3, 3, {1, 2, 3, 4}), false, true, cb);
  EXPECT_TRUE(pairs.empty()) << "matched an evicted record";
  EXPECT_EQ(joiner.stats().evictions, 1u);
}

TEST(MinHashJoinerTest, DeterministicAcrossInstances) {
  const auto stream = MakeStream(47, 1000, 0.4);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  MinHashJoiner a(sim, WindowSpec::Unbounded());
  MinHashJoiner b(sim, WindowSpec::Unbounded());
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, a)), Canonical(SingleNodeJoin(stream, b)));
}

}  // namespace
}  // namespace dssj
