#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/bundle_joiner.h"
#include "core/join_topology.h"
#include "core/record_joiner.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n, double dup_fraction,
                                  size_t max_len = 24) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;  // small universe → dense overlaps
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, max_len);
  options.duplicate_fraction = dup_fraction;
  options.mutation_rate = 0.15;
  options.dup_locality = 200;
  options.timestamp_step_us = 1000;
  return WorkloadGenerator(options).Generate(n);
}

// (function, threshold, window, dup_fraction, algorithm)
using JoinerParam = std::tuple<SimilarityFunction, int64_t, int, double, LocalAlgorithm>;

WindowSpec WindowFromCode(int code) {
  switch (code) {
    case 0:
      return WindowSpec::Unbounded();
    case 1:
      return WindowSpec::ByCount(64);
    default:
      return WindowSpec::ByTime(150 * 1000);  // 150 stream-steps
  }
}

class JoinerEquivalenceTest : public ::testing::TestWithParam<JoinerParam> {
 protected:
  SimilaritySpec spec() const {
    return SimilaritySpec(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
  WindowSpec window() const { return WindowFromCode(std::get<2>(GetParam())); }
  double dup_fraction() const { return std::get<3>(GetParam()); }
  LocalAlgorithm algorithm() const { return std::get<4>(GetParam()); }

  std::unique_ptr<LocalJoiner> MakeJoiner() const {
    switch (algorithm()) {
      case LocalAlgorithm::kRecord:
        return std::make_unique<RecordJoiner>(spec(), window());
      case LocalAlgorithm::kBundle:
        return std::make_unique<BundleJoiner>(spec(), window());
      case LocalAlgorithm::kBruteForce:
        return std::make_unique<BruteForceJoiner>(spec(), window());
    }
    return nullptr;
  }
};

TEST_P(JoinerEquivalenceTest, MatchesBruteForceOnRandomStream) {
  const std::vector<RecordPtr> stream = MakeStream(/*seed=*/17, /*n=*/600, dup_fraction());
  BruteForceJoiner reference(spec(), window());
  auto joiner = MakeJoiner();
  const auto expected = Canonical(SingleNodeJoin(stream, reference));
  const auto actual = Canonical(SingleNodeJoin(stream, *joiner));
  ASSERT_EQ(actual.size(), expected.size())
      << spec().ToString() << " " << window().ToString();
  EXPECT_EQ(actual, expected);
  // Sanity: the streams are engineered to produce some results at moderate
  // thresholds; guard against vacuous tests.
  if (std::get<1>(GetParam()) <= 800 && dup_fraction() >= 0.3 &&
      spec().function() != SimilarityFunction::kOverlap) {
    EXPECT_GT(expected.size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinerEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(SimilarityFunction::kJaccard, SimilarityFunction::kCosine,
                          SimilarityFunction::kDice),
        ::testing::Values<int64_t>(600, 800, 950, 1000), ::testing::Values(0, 1, 2),
        ::testing::Values(0.0, 0.4), ::testing::Values(LocalAlgorithm::kRecord,
                                                       LocalAlgorithm::kBundle)),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(SimilarityFunctionName(std::get<0>(p))) + "_t" +
             std::to_string(std::get<1>(p)) + "_w" + std::to_string(std::get<2>(p)) + "_d" +
             std::to_string(static_cast<int>(std::get<3>(p) * 10)) + "_" +
             LocalAlgorithmName(std::get<4>(p));
    });

INSTANTIATE_TEST_SUITE_P(
    OverlapSweep, JoinerEquivalenceTest,
    ::testing::Combine(::testing::Values(SimilarityFunction::kOverlap),
                       ::testing::Values<int64_t>(3, 6), ::testing::Values(0, 1, 2),
                       ::testing::Values(0.4),
                       ::testing::Values(LocalAlgorithm::kRecord, LocalAlgorithm::kBundle)),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string("overlap_c") + std::to_string(std::get<1>(p)) + "_w" +
             std::to_string(std::get<2>(p)) + "_" + LocalAlgorithmName(std::get<4>(p));
    });

TEST(RecordJoinerTest, NoSelfMatchAndNoDuplicatePairs) {
  const auto stream = MakeStream(3, 400, 0.5);
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 700),
                      WindowSpec::Unbounded());
  const auto pairs = SingleNodeJoin(stream, joiner);
  for (const ResultPair& p : pairs) {
    EXPECT_NE(p.probe_seq, p.partner_seq);
    EXPECT_LT(p.partner_seq, p.probe_seq) << "partner must precede probe";
  }
  auto canon = Canonical(pairs);
  EXPECT_TRUE(std::adjacent_find(canon.begin(), canon.end()) == canon.end())
      << "duplicate pair emitted";
}

TEST(RecordJoinerTest, ExactDuplicatesAlwaysFound) {
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 1000),
                      WindowSpec::Unbounded());
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {1, 5, 9}), true, true, cb);
  joiner.Process(MakeRecord(1, 1, {2, 5, 9}), true, true, cb);
  joiner.Process(MakeRecord(2, 2, {1, 5, 9}), true, true, cb);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].probe_seq, 2u);
  EXPECT_EQ(pairs[0].partner_seq, 0u);
}

TEST(RecordJoinerTest, EmptyRecordsAreIgnored) {
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 500),
                      WindowSpec::Unbounded());
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {}), true, true, cb);
  joiner.Process(MakeRecord(1, 1, {}), true, true, cb);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(joiner.StoredCount(), 0u);
}

TEST(RecordJoinerTest, CountWindowEvictsOldest) {
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 1000),
                      WindowSpec::ByCount(2));
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {1, 2, 3}), true, true, cb);
  joiner.Process(MakeRecord(1, 1, {4, 5, 6}), true, true, cb);
  joiner.Process(MakeRecord(2, 2, {7, 8, 9}), true, true, cb);  // evicts seq 0
  EXPECT_EQ(joiner.StoredCount(), 2u);
  joiner.Process(MakeRecord(3, 3, {1, 2, 3}), true, true, cb);  // seq 0 gone
  EXPECT_TRUE(pairs.empty());
  joiner.Process(MakeRecord(4, 4, {7, 8, 9}), true, true, cb);  // seq 2 still in
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].partner_seq, 2u);
  EXPECT_EQ(joiner.stats().evictions, 3u);
}

TEST(RecordJoinerTest, TimeWindowEvictsByTimestamp) {
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 1000),
                      WindowSpec::ByTime(100));
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {1, 2, 3}, /*timestamp=*/0), true, true, cb);
  joiner.Process(MakeRecord(1, 1, {1, 2, 3}, /*timestamp=*/90), true, true, cb);
  EXPECT_EQ(pairs.size(), 1u);
  pairs.clear();
  joiner.Process(MakeRecord(2, 2, {1, 2, 3}, /*timestamp=*/250), true, true, cb);
  // Record at t=0 expired (250-100=150 > 0); record at t=90 expired too.
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(joiner.StoredCount(), 1u);
}

TEST(RecordJoinerTest, ProbeOnlyRecordsAreNotStored) {
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 1000),
                      WindowSpec::Unbounded());
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {1, 2}), /*store=*/false, /*probe=*/true, cb);
  joiner.Process(MakeRecord(1, 1, {1, 2}), /*store=*/true, /*probe=*/true, cb);
  EXPECT_TRUE(pairs.empty());  // seq 0 was never stored
  EXPECT_EQ(joiner.StoredCount(), 1u);
}

TEST(RecordJoinerTest, PositionalFilterPrunesButPreservesResults) {
  const auto stream = MakeStream(11, 500, 0.4);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  RecordJoinerOptions with, without;
  with.positional_filter = true;
  without.positional_filter = false;
  RecordJoiner a(sim, WindowSpec::Unbounded(), with);
  RecordJoiner b(sim, WindowSpec::Unbounded(), without);
  const auto pa = Canonical(SingleNodeJoin(stream, a));
  const auto pb = Canonical(SingleNodeJoin(stream, b));
  EXPECT_EQ(pa, pb);
  EXPECT_LE(a.stats().candidates, b.stats().candidates);
  EXPECT_GT(a.stats().position_filtered, 0u);
}

TEST(RecordJoinerTest, CompactIndexDropsDeadPostings) {
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                      WindowSpec::ByCount(4));
  const auto cb = [](const ResultPair&) {};
  for (uint64_t i = 0; i < 64; ++i) {
    joiner.Process(MakeRecord(i, i, {static_cast<TokenId>(i % 7), 100, 101, 102}), true, true,
                   cb);
  }
  const size_t before = joiner.MemoryBytes();
  joiner.CompactIndex();
  EXPECT_LE(joiner.MemoryBytes(), before);
  EXPECT_GT(joiner.stats().dead_postings_purged, 0u);
}

TEST(LocalJoinerStatsTest, FiltersActuallyFire) {
  const auto stream = MakeStream(23, 800, 0.4);
  RecordJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                      WindowSpec::Unbounded());
  SingleNodeJoin(stream, joiner);
  const JoinerStats& s = joiner.stats();
  size_t non_empty = 0;
  for (const RecordPtr& r : stream) non_empty += r->size() > 0 ? 1 : 0;
  EXPECT_EQ(s.probes, non_empty);
  EXPECT_GT(s.postings_scanned, 0u);
  EXPECT_GT(s.length_filtered, 0u);
  EXPECT_GT(s.candidates, 0u);
  EXPECT_GE(s.verify.full_verifications, s.candidates);
}

}  // namespace
}  // namespace dssj
