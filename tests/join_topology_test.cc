// Unit tests of the join-topology facade: factories, naming, degenerate
// inputs, and configuration validation (complements the end-to-end
// equivalence tests in distributed_join_test.cc).

#include "core/join_topology.h"

#include <gtest/gtest.h>

#include "dssj.h"  // umbrella header must compile and suffice on its own

namespace dssj {
namespace {

TEST(NamesTest, AllEnumeratorsHaveNames) {
  EXPECT_STREQ(DistributionStrategyName(DistributionStrategy::kLengthBased), "length");
  EXPECT_STREQ(DistributionStrategyName(DistributionStrategy::kPrefixBased), "prefix");
  EXPECT_STREQ(DistributionStrategyName(DistributionStrategy::kBroadcast), "broadcast");
  EXPECT_STREQ(LocalAlgorithmName(LocalAlgorithm::kRecord), "record");
  EXPECT_STREQ(LocalAlgorithmName(LocalAlgorithm::kBundle), "bundle");
  EXPECT_STREQ(LocalAlgorithmName(LocalAlgorithm::kBruteForce), "bruteforce");
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kLoadAwareGreedy), "load-aware-greedy");
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kLoadAwareFull), "load-aware-full");
  EXPECT_STREQ(SimilarityFunctionName(SimilarityFunction::kOverlap), "overlap");
  EXPECT_STREQ(DatasetPresetName(DatasetPreset::kDblp), "DBLP");
}

TEST(MakeLocalJoinerTest, BuildsEveryAlgorithm) {
  DistributedJoinOptions options;
  options.local = LocalAlgorithm::kRecord;
  EXPECT_NE(MakeLocalJoiner(options, 0), nullptr);
  options.local = LocalAlgorithm::kBundle;
  EXPECT_NE(MakeLocalJoiner(options, 0), nullptr);
  options.local = LocalAlgorithm::kBruteForce;
  EXPECT_NE(MakeLocalJoiner(options, 0), nullptr);
}

TEST(MakeLocalJoinerDeathTest, PrefixStrategyRestrictsAlgorithms) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DistributedJoinOptions options;
  options.strategy = DistributionStrategy::kPrefixBased;
  options.local = LocalAlgorithm::kBundle;
  EXPECT_DEATH(MakeLocalJoiner(options, 0), "not defined for the prefix");
  options.local = LocalAlgorithm::kBruteForce;
  EXPECT_DEATH(MakeLocalJoiner(options, 0), "dedup");
}

TEST(RunDistributedJoinTest, EmptyInputCompletesCleanly) {
  DistributedJoinOptions options;
  options.num_joiners = 3;
  options.strategy = DistributionStrategy::kBroadcast;
  const DistributedJoinResult result = RunDistributedJoin({}, options);
  EXPECT_EQ(result.input_records, 0u);
  EXPECT_EQ(result.result_count, 0u);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.replication_factor, 0.0);
  EXPECT_EQ(result.latency.count, 0u);
}

TEST(RunDistributedJoinTest, AllEmptyRecordsYieldNothing) {
  std::vector<RecordPtr> stream;
  for (uint64_t i = 0; i < 50; ++i) stream.push_back(MakeRecord(i, i, {}));
  DistributedJoinOptions options;
  options.num_joiners = 2;
  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition = LengthPartition({0, 8, 64});
  const DistributedJoinResult result = RunDistributedJoin(stream, options);
  EXPECT_EQ(result.result_count, 0u);
  EXPECT_EQ(result.total_stores, 0u);
  EXPECT_EQ(result.dispatch_messages, 0u);
}

TEST(RunDistributedJoinTest, SingleRecordHasNoPartner) {
  const std::vector<RecordPtr> stream{MakeRecord(0, 0, {1, 2, 3})};
  DistributedJoinOptions options;
  options.num_joiners = 2;
  options.strategy = DistributionStrategy::kBroadcast;
  const DistributedJoinResult result = RunDistributedJoin(stream, options);
  EXPECT_EQ(result.result_count, 0u);
  EXPECT_EQ(result.total_stores, 1u);
}

TEST(RunDistributedJoinTest, IdenticalRunsGiveIdenticalResultSets) {
  WorkloadOptions wo;
  wo.seed = 71;
  wo.token_universe = 300;
  wo.duplicate_fraction = 0.4;
  const auto stream = WorkloadGenerator(wo).Generate(500);
  DistributedJoinOptions options;
  options.num_joiners = 4;
  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 4, PartitionMethod::kLoadAwareGreedy);
  auto canonical = [](std::vector<ResultPair> pairs) {
    std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
      return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
    });
    return pairs;
  };
  const auto a = canonical(RunDistributedJoin(stream, options).pairs);
  const auto b = canonical(RunDistributedJoin(stream, options).pairs);
  EXPECT_EQ(a, b);
}

TEST(WindowSpecTest, ToStringAndPredicates) {
  EXPECT_EQ(WindowSpec::Unbounded().ToString(), "window=unbounded");
  EXPECT_EQ(WindowSpec::ByCount(5).ToString(), "window=count:5");
  EXPECT_EQ(WindowSpec::ByTime(100).ToString(), "window=time:100us");
  const WindowSpec count = WindowSpec::ByCount(3);
  EXPECT_FALSE(count.OverCount(2));
  EXPECT_TRUE(count.OverCount(3));
  EXPECT_FALSE(count.ExpiredByTime(0, 1 << 20));
  const WindowSpec timed = WindowSpec::ByTime(100);
  EXPECT_TRUE(timed.ExpiredByTime(0, 101));
  EXPECT_FALSE(timed.ExpiredByTime(1, 101));
  EXPECT_FALSE(timed.OverCount(1u << 20));
}

TEST(LatencySummaryTest, PopulatedFromRun) {
  WorkloadOptions wo;
  wo.seed = 72;
  const auto stream = WorkloadGenerator(wo).Generate(300);
  DistributedJoinOptions options;
  options.num_joiners = 2;
  options.strategy = DistributionStrategy::kBroadcast;
  options.collect_results = false;
  const DistributedJoinResult result = RunDistributedJoin(stream, options);
  EXPECT_GT(result.latency.count, 0u);
  EXPECT_GE(result.latency.p95_us, result.latency.p50_us);
  EXPECT_GE(result.latency.p99_us, result.latency.p95_us);
  EXPECT_GE(result.latency.max_us, result.latency.p99_us);
  EXPECT_GT(result.latency.mean_us, 0.0);
}

TEST(RemoteByteCostTest, InflatesScaledCostOnly) {
  WorkloadOptions wo;
  wo.seed = 73;
  const auto stream = WorkloadGenerator(wo).Generate(2000);
  DistributedJoinOptions options;
  options.num_joiners = 4;
  options.strategy = DistributionStrategy::kBroadcast;
  options.collect_results = false;
  const auto free_run = RunDistributedJoin(stream, options);
  options.remote_byte_cost_ns = 50.0;  // exaggerated to dominate
  const auto costly_run = RunDistributedJoin(stream, options);
  EXPECT_EQ(free_run.result_count, costly_run.result_count);
  EXPECT_EQ(free_run.dispatch_bytes, costly_run.dispatch_bytes);
  EXPECT_LT(costly_run.scaled_throughput_rps, free_run.scaled_throughput_rps);
}

}  // namespace
}  // namespace dssj
