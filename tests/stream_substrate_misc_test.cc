// Odds-and-ends coverage of the stream substrate not exercised by
// topology_test: spout parallelism with placement, custom groupings
// fanning to multiple targets, tuple payloads, and the simulated
// serialization charge.

#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "stream/topology.h"
#include "text/record.h"

namespace dssj::stream {
namespace {

class OneShotSpout : public Spout {
 public:
  explicit OneShotSpout(int64_t value) : value_(value) {}
  bool NextTuple(OutputCollector& out) override {
    if (done_) return false;
    done_ = true;
    out.Emit(MakeTuple(value_));
    return true;
  }

 private:
  int64_t value_;
  bool done_ = false;
};

TEST(StreamMiscTest, CustomGroupingMayFanOutToSeveralTasks) {
  std::atomic<int> hits{0};
  struct CountBolt : public Bolt {
    explicit CountBolt(std::atomic<int>* hits) : hits_(hits) {}
    void Execute(Tuple, OutputCollector&) override { hits_->fetch_add(1); }
    std::atomic<int>* hits_;
  };
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<OneShotSpout>(5); });
  b.SetBolt("sink", [&hits] { return std::make_unique<CountBolt>(&hits); }, 4)
      .CustomGrouping("src", [](const Tuple&, int n, std::vector<int>& targets) {
        for (int i = 0; i < n; i += 2) targets.push_back(i);  // tasks 0 and 2
      });
  b.Build()->Run();
  EXPECT_EQ(hits.load(), 2);
}

TEST(StreamMiscTest, OpaquePayloadTravelsByPointer) {
  const RecordPtr record = MakeRecord(1, 2, {10, 20, 30});
  std::atomic<bool> same_object{false};
  struct CheckBolt : public Bolt {
    CheckBolt(const Record* expected, std::atomic<bool>* same)
        : expected_(expected), same_(same) {}
    void Execute(Tuple tuple, OutputCollector&) override {
      same_->store(tuple.Ptr<Record>(0).get() == expected_);
    }
    const Record* expected_;
    std::atomic<bool>* same_;
  };
  TopologyBuilder b;
  b.SetSpout("src", [record] {
    class PayloadSpout : public Spout {
     public:
      explicit PayloadSpout(RecordPtr r) : r_(std::move(r)) {}
      bool NextTuple(OutputCollector& out) override {
        if (done_) return false;
        done_ = true;
        Tuple t = MakeTuple(std::shared_ptr<const void>(r_));
        t.set_payload_bytes(r_->SerializedBytes());
        out.Emit(std::move(t));
        return true;
      }
      RecordPtr r_;
      bool done_ = false;
    };
    return std::make_unique<PayloadSpout>(record);
  });
  b.SetBolt("sink",
            [&record, &same_object] {
              return std::make_unique<CheckBolt>(record.get(), &same_object);
            })
      .ShuffleGrouping("src");
  b.Build()->Run();
  EXPECT_TRUE(same_object.load()) << "payload was copied, not shared";
}

TEST(StreamMiscTest, SerializationChargeLandsOnBothEndpoints) {
  struct NullBolt : public Bolt {
    void Execute(Tuple, OutputCollector&) override {}
  };
  auto run = [&](double cost) {
    TopologyBuilder b;
    b.SetNumWorkers(2);
    b.SetRemoteByteCostNanos(cost);
    b.SetSpout("src", [] { return std::make_unique<OneShotSpout>(1); }).SetPlacement({0});
    b.SetBolt("sink", [] { return std::make_unique<NullBolt>(); }, 1)
        .ShuffleGrouping("src")
        .SetPlacement({1});
    auto topo = b.Build();
    topo->Run();
    const uint64_t src_busy = topo->TasksOf("src")[0].metrics->busy_nanos.Get();
    const uint64_t sink_busy = topo->TasksOf("sink")[0].metrics->busy_nanos.Get();
    return std::pair<uint64_t, uint64_t>{src_busy, sink_busy};
  };
  const auto [src_free, sink_free] = run(0.0);
  // A huge per-byte cost must dominate both endpoints' busy time.
  const auto [src_costly, sink_costly] = run(1e6);
  EXPECT_GT(src_costly, src_free + 1000000u);
  EXPECT_GT(sink_costly, sink_free + 1000000u);
}

TEST(StreamMiscTest, SpoutParallelismWithExplicitPlacement) {
  std::atomic<int> received{0};
  struct CountBolt : public Bolt {
    explicit CountBolt(std::atomic<int>* n) : n_(n) {}
    void Execute(Tuple, OutputCollector&) override { n_->fetch_add(1); }
    std::atomic<int>* n_;
  };
  TopologyBuilder b;
  b.SetNumWorkers(3);
  b.SetSpout("src", [] { return std::make_unique<OneShotSpout>(9); }, 3)
      .SetPlacement({2, 1, 0});
  b.SetBolt("sink", [&received] { return std::make_unique<CountBolt>(&received); }, 2)
      .ShuffleGrouping("src");
  auto topo = b.Build();
  topo->Run();
  EXPECT_EQ(received.load(), 3);
  // Placement respected.
  const auto tasks = topo->TasksOf("src");
  EXPECT_EQ(tasks[0].worker, 2);
  EXPECT_EQ(tasks[1].worker, 1);
  EXPECT_EQ(tasks[2].worker, 0);
}

TEST(StreamMiscTest, MaxGaugeTracksMaximum) {
  MaxGauge gauge;
  EXPECT_EQ(gauge.Get(), 0u);
  gauge.Update(5);
  gauge.Update(3);
  EXPECT_EQ(gauge.Get(), 5u);
  gauge.Update(9);
  EXPECT_EQ(gauge.Get(), 9u);
}

}  // namespace
}  // namespace dssj::stream
