#include "stream/topology.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dssj::stream {
namespace {

/// Emits the integers [0, n).
class CountingSpout : public Spout {
 public:
  explicit CountingSpout(int64_t n) : n_(n) {}
  bool NextTuple(OutputCollector& out) override {
    if (next_ >= n_) return false;
    out.Emit(MakeTuple(next_++));
    return true;
  }

 private:
  int64_t n_;
  int64_t next_ = 0;
};

/// Records every value it sees (thread-safe via external registry).
struct Seen {
  std::mutex mu;
  std::map<int, std::vector<int64_t>> by_task;
  void Note(int task, int64_t v) {
    std::lock_guard<std::mutex> lock(mu);
    by_task[task].push_back(v);
  }
  size_t Total() {
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (auto& [_, v] : by_task) n += v.size();
    return n;
  }
};

class CollectBolt : public Bolt {
 public:
  explicit CollectBolt(std::shared_ptr<Seen> seen, bool forward = false)
      : seen_(std::move(seen)), forward_(forward) {}
  void Prepare(const TaskContext& ctx) override { task_ = ctx.task_index; }
  void Execute(Tuple tuple, OutputCollector& out) override {
    seen_->Note(task_, tuple.Int(0));
    if (forward_) out.Emit(std::move(tuple));
  }

 private:
  std::shared_ptr<Seen> seen_;
  bool forward_;
  int task_ = -1;
};

TEST(TopologyTest, ShuffleGroupingDeliversEverythingOnce) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(1000); });
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 4)
      .ShuffleGrouping("src");
  b.Build()->Run();
  EXPECT_EQ(seen->Total(), 1000u);
  std::set<int64_t> all;
  for (auto& [task, values] : seen->by_task) {
    EXPECT_GT(values.size(), 100u) << "shuffle starved task " << task;
    all.insert(values.begin(), values.end());
  }
  EXPECT_EQ(all.size(), 1000u);
}

TEST(TopologyTest, FieldsGroupingIsDeterministicPerKey) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] {
    // Emit each key several times.
    class KeySpout : public Spout {
     public:
      bool NextTuple(OutputCollector& out) override {
        if (i_ >= 300) return false;
        out.Emit(MakeTuple(static_cast<int64_t>(i_ % 30)));
        ++i_;
        return true;
      }
      int i_ = 0;
    };
    return std::make_unique<KeySpout>();
  });
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 5)
      .FieldsGrouping("src", {0});
  b.Build()->Run();
  // Every key lands on exactly one task.
  std::map<int64_t, std::set<int>> key_tasks;
  for (auto& [task, values] : seen->by_task) {
    for (int64_t v : values) key_tasks[v].insert(task);
  }
  EXPECT_EQ(key_tasks.size(), 30u);
  for (auto& [key, tasks] : key_tasks) {
    EXPECT_EQ(tasks.size(), 1u) << "key " << key << " split across tasks";
  }
}

TEST(TopologyTest, AllGroupingBroadcasts) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(50); });
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 3)
      .AllGrouping("src");
  b.Build()->Run();
  EXPECT_EQ(seen->Total(), 150u);
  for (auto& [task, values] : seen->by_task) EXPECT_EQ(values.size(), 50u);
}

TEST(TopologyTest, GlobalGroupingGoesToTaskZero) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(50); });
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 3)
      .GlobalGrouping("src");
  b.Build()->Run();
  EXPECT_EQ(seen->Total(), 50u);
  EXPECT_EQ(seen->by_task.count(0), 1u);
  EXPECT_EQ(seen->by_task.size(), 1u);
}

TEST(TopologyTest, CustomGroupingRoutesByValue) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(100); });
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 4)
      .CustomGrouping("src", [](const Tuple& t, int n, std::vector<int>& targets) {
        targets.push_back(static_cast<int>(t.Int(0) % n));
      });
  b.Build()->Run();
  for (auto& [task, values] : seen->by_task) {
    for (int64_t v : values) EXPECT_EQ(static_cast<int>(v % 4), task);
  }
}

/// Direct emission: producer bolt addresses consumer tasks explicitly.
class DirectEmitBolt : public Bolt {
 public:
  void Execute(Tuple tuple, OutputCollector& out) override {
    const int target = static_cast<int>(tuple.Int(0) % 3);
    out.EmitDirect("sink", target, std::move(tuple));
  }
};

TEST(TopologyTest, DirectGroupingDeliversToAddressedTask) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(99); });
  b.SetBolt("router", [] { return std::make_unique<DirectEmitBolt>(); })
      .ShuffleGrouping("src");
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 3)
      .DirectGrouping("router");
  b.Build()->Run();
  EXPECT_EQ(seen->Total(), 99u);
  for (auto& [task, values] : seen->by_task) {
    EXPECT_EQ(values.size(), 33u);
    for (int64_t v : values) EXPECT_EQ(static_cast<int>(v % 3), task);
  }
}

TEST(TopologyTest, ChainPropagatesEosThroughMultipleStages) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(500); }, 2);
  b.SetBolt("mid", [seen] { return std::make_unique<CollectBolt>(seen, /*forward=*/true); }, 3)
      .ShuffleGrouping("src");
  auto seen2 = std::make_shared<Seen>();
  b.SetBolt("sink", [seen2] { return std::make_unique<CollectBolt>(seen2); }, 2)
      .ShuffleGrouping("mid");
  b.Build()->Run();
  EXPECT_EQ(seen->Total(), 1000u);  // two spout tasks × 500
  EXPECT_EQ(seen2->Total(), 1000u);
}

TEST(TopologyTest, FinishIsCalledAfterAllUpstreamEos) {
  struct FinishProbe : public Bolt {
    explicit FinishProbe(std::atomic<int>* executed, std::atomic<int>* finished)
        : executed_(executed), finished_(finished) {}
    void Execute(Tuple, OutputCollector&) override {
      EXPECT_EQ(finished_->load(), 0) << "tuple after Finish";
      executed_->fetch_add(1);
    }
    void Finish(OutputCollector&) override { finished_->fetch_add(1); }
    std::atomic<int>* executed_;
    std::atomic<int>* finished_;
  };
  std::atomic<int> executed{0}, finished{0};
  TopologyBuilder b;
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(100); }, 3);
  b.SetBolt("sink", [&] { return std::make_unique<FinishProbe>(&executed, &finished); }, 1)
      .ShuffleGrouping("src");
  b.Build()->Run();
  EXPECT_EQ(executed.load(), 300);
  EXPECT_EQ(finished.load(), 1);
}

TEST(TopologyTest, MetricsCountMessagesAndRemoteBytes) {
  auto seen = std::make_shared<Seen>();
  TopologyBuilder b;
  b.SetNumWorkers(2);
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(100); })
      .SetPlacement({0});
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); }, 2)
      .ShuffleGrouping("src")
      .SetPlacement({0, 1});
  auto topo = b.Build();
  topo->Run();
  const ComponentAggregate src = Aggregate(topo->TasksOf("src"));
  EXPECT_EQ(src.total_messages, 100u);
  // Half the shuffle goes to the co-located task, half crosses workers.
  EXPECT_EQ(src.remote_messages, 50u);
  EXPECT_GT(src.remote_bytes, 0u);
  EXPECT_GT(src.total_bytes, src.remote_bytes);
  const ComponentAggregate sink = Aggregate(topo->TasksOf("sink"));
  EXPECT_EQ(sink.executed, 100u);
  EXPECT_EQ(sink.emitted, 0u);
}

TEST(TopologyTest, QueueHighwaterTracksBackpressure) {
  // A slow sink behind a fast spout must show a deep (capacity-bound)
  // inbound queue.
  struct SlowBolt : public Bolt {
    void Execute(Tuple, OutputCollector&) override {
      int sink = 0;
      for (int i = 0; i < 20000; ++i) sink += i;
      benchmark_blackhole_ = sink;
    }
    volatile int benchmark_blackhole_ = 0;
  };
  TopologyBuilder b;
  b.SetQueueCapacity(16);
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(400); });
  b.SetBolt("sink", [] { return std::make_unique<SlowBolt>(); }).ShuffleGrouping("src");
  auto topo = b.Build();
  topo->Run();
  const auto tasks = topo->TasksOf("sink");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_GE(tasks[0].metrics->queue_highwater.Get(), 8u);
  EXPECT_LE(tasks[0].metrics->queue_highwater.Get(), 16u);
}

TEST(TopologyTest, ElapsedSecondsIsPositiveAfterRun) {
  TopologyBuilder b;
  auto seen = std::make_shared<Seen>();
  b.SetSpout("src", [] { return std::make_unique<CountingSpout>(10); });
  b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); })
      .ShuffleGrouping("src");
  auto topo = b.Build();
  EXPECT_EQ(topo->ElapsedSeconds(), 0.0);
  topo->Run();
  EXPECT_GT(topo->ElapsedSeconds(), 0.0);
}

TEST(TopologyDeathTest, RejectsUnknownSourceAndCycles) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    TopologyBuilder b;
    b.SetSpout("src", [] { return std::make_unique<CountingSpout>(1); });
    auto seen = std::make_shared<Seen>();
    b.SetBolt("sink", [seen] { return std::make_unique<CollectBolt>(seen); })
        .ShuffleGrouping("nope");
    EXPECT_DEATH(b.Build(), "unknown component");
  }
  {
    TopologyBuilder b;
    auto seen = std::make_shared<Seen>();
    b.SetSpout("src", [] { return std::make_unique<CountingSpout>(1); });
    b.SetBolt("a", [seen] { return std::make_unique<CollectBolt>(seen, true); })
        .ShuffleGrouping("src")
        .ShuffleGrouping("b");
    b.SetBolt("b", [seen] { return std::make_unique<CollectBolt>(seen, true); })
        .ShuffleGrouping("a");
    EXPECT_DEATH(b.Build(), "cycle");
  }
  {
    TopologyBuilder b;
    b.SetSpout("src", [] { return std::make_unique<CountingSpout>(1); });
    auto seen = std::make_shared<Seen>();
    b.SetBolt("orphan", [seen] { return std::make_unique<CollectBolt>(seen); });
    EXPECT_DEATH(b.Build(), "no input");
  }
}

TEST(TupleTest, FieldAccessAndBytes) {
  Tuple t = MakeTuple(int64_t{42}, 2.5, std::string("abc"));
  EXPECT_EQ(t.num_fields(), 3u);
  EXPECT_EQ(t.Int(0), 42);
  EXPECT_DOUBLE_EQ(t.Double(1), 2.5);
  EXPECT_EQ(t.Str(2), "abc");
  // 16 header + 8 + 8 + (4 + 3).
  EXPECT_EQ(t.SerializedBytes(), 16u + 8 + 8 + 7);
  t.set_payload_bytes(100);
  EXPECT_EQ(t.SerializedBytes(), 16u + 8 + 8 + 7 + 100);
}

}  // namespace
}  // namespace dssj::stream
