// End-to-end fault injection and recovery: a supervised topology hit by
// scripted task kills, link drops/duplicates/delays must produce a result
// set byte-identical to the failure-free run — the exactly-once recovery
// guarantee. The FaultScenario fixture below is the reusable harness:
// configure a join, attach a fault script, and assert equality against the
// clean run of the same configuration.

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_topology.h"
#include "stream/fault.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  options.timestamp_step_us = 1000;
  return WorkloadGenerator(options).Generate(n);
}

/// Reusable failure-test harness: builds a distributed join configuration,
/// runs it once clean and once under a fault script, and asserts the fault
/// run recovered to the exact clean result set. Tests tweak `options` and
/// call one of the Run* helpers.
class FaultScenario : public ::testing::Test {
 protected:
  FaultScenario() {
    stream_ = MakeStream(417, 900);
    options_.sim = SimilaritySpec(SimilarityFunction::kJaccard, 750);
    options_.num_joiners = 3;
    options_.collect_results = true;
    options_.length_partition = PlanLengthPartition(stream_, options_.sim, options_.num_joiners,
                                                    PartitionMethod::kLoadAwareGreedy);
    options_.supervision.initial_backoff_micros = 50;  // keep tests fast
    options_.supervision.max_backoff_micros = 1000;
  }

  DistributedJoinResult RunClean() {
    DistributedJoinOptions clean = options_;
    clean.supervise = false;
    clean.fault_script.clear();
    DistributedJoinResult result = RunDistributedJoin(stream_, clean);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.restarts, 0u);
    return result;
  }

  DistributedJoinResult RunFaulty(const std::string& script) {
    DistributedJoinOptions faulty = options_;
    faulty.supervise = true;
    faulty.fault_script = script;
    return RunDistributedJoin(stream_, faulty);
  }

  /// The core assertion: the faulty run must recover to the clean run's
  /// exact result set (same pairs, same count), and must actually have
  /// exercised recovery when `expect_restarts` is set.
  void ExpectExactRecovery(const std::string& script, bool expect_restarts = true) {
    const DistributedJoinResult clean = RunClean();
    const DistributedJoinResult faulty = RunFaulty(script);
    ASSERT_TRUE(faulty.ok) << faulty.failure_message;
    if (expect_restarts) {
      EXPECT_GT(faulty.restarts, 0u) << "fault script did not trigger a restart: " << script;
      EXPECT_GT(faulty.replayed_tuples, 0u);
    }
    EXPECT_EQ(faulty.result_count, clean.result_count);
    const auto expect = Canonical(clean.pairs);
    const auto got = Canonical(faulty.pairs);
    ASSERT_EQ(got.size(), expect.size()) << "script: " << script;
    EXPECT_EQ(got, expect) << "recovered result set diverged; script: " << script;
    EXPECT_GT(expect.size(), 0u) << "vacuous test stream";
  }

  std::vector<RecordPtr> stream_;
  DistributedJoinOptions options_;
};

// --- Task kills, per stateful joiner implementation ---------------------

TEST_F(FaultScenario, KillRecordJoinerMidStream) {
  options_.local = LocalAlgorithm::kRecord;
  ExpectExactRecovery("kill:joiner:1@150");
}

TEST_F(FaultScenario, KillBundleJoinerMidStream) {
  options_.local = LocalAlgorithm::kBundle;
  ExpectExactRecovery("kill:joiner:0@150");
}

TEST_F(FaultScenario, KillBruteForceJoinerMidStream) {
  options_.local = LocalAlgorithm::kBruteForce;
  ExpectExactRecovery("kill:joiner:2@100");
}

TEST_F(FaultScenario, KillJoinerWithPrefixStrategy) {
  options_.strategy = DistributionStrategy::kPrefixBased;
  options_.local = LocalAlgorithm::kRecord;
  ExpectExactRecovery("kill:joiner:1@120");
}

TEST_F(FaultScenario, KillWithCheckpointsEveryHundredTuples) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.checkpoint_interval = 100;
  const DistributedJoinResult faulty = RunFaulty("kill:joiner:1@350");
  ASSERT_TRUE(faulty.ok) << faulty.failure_message;
  EXPECT_GT(faulty.checkpoints, 0u);
  EXPECT_GT(faulty.checkpoint_bytes, 0u);
  const DistributedJoinResult clean = RunClean();
  EXPECT_EQ(Canonical(faulty.pairs), Canonical(clean.pairs));
  // Recovery from a checkpoint replays at most the gap since it, not the
  // whole stream.
  EXPECT_LT(faulty.replayed_tuples, 350u);
}

TEST_F(FaultScenario, CheckpointIntervalSweepKeepsResultsExact) {
  options_.local = LocalAlgorithm::kBundle;
  const DistributedJoinResult clean = RunClean();
  for (const uint64_t interval : {0ull, 50ull, 250ull}) {
    options_.supervision.checkpoint_interval = interval;
    const DistributedJoinResult faulty = RunFaulty("kill:joiner:0@300; kill:joiner:2@200");
    ASSERT_TRUE(faulty.ok) << faulty.failure_message;
    EXPECT_EQ(Canonical(faulty.pairs), Canonical(clean.pairs))
        << "checkpoint_interval=" << interval;
  }
}

TEST_F(FaultScenario, RepeatedKillsOfSameTask) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.checkpoint_interval = 64;
  ExpectExactRecovery("kill:joiner:1@100; kill:joiner:1@200; kill:joiner:1@300");
}

TEST_F(FaultScenario, KillDispatcher) {
  options_.local = LocalAlgorithm::kRecord;
  ExpectExactRecovery("kill:dispatcher:0@400");
}

TEST_F(FaultScenario, KillSpout) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.checkpoint_interval = 128;
  ExpectExactRecovery("kill:source:0@450");
}

TEST_F(FaultScenario, KillSink) {
  options_.local = LocalAlgorithm::kRecord;
  ExpectExactRecovery("kill:sink:0@50");
}

TEST_F(FaultScenario, KillEveryTierInOneRun) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.checkpoint_interval = 100;
  ExpectExactRecovery(
      "kill:source:0@200; kill:dispatcher:0@300; kill:joiner:0@150; "
      "kill:joiner:1@250; kill:sink:0@40");
}

// --- Kills under batched transport --------------------------------------

TEST_F(FaultScenario, KillWithBatchSizeOne) {
  options_.local = LocalAlgorithm::kRecord;
  options_.batch_size = 1;
  ExpectExactRecovery("kill:joiner:1@150");
}

TEST_F(FaultScenario, KillWithLargeBatches) {
  options_.local = LocalAlgorithm::kBundle;
  options_.batch_size = 128;
  options_.supervision.checkpoint_interval = 100;
  ExpectExactRecovery("kill:joiner:0@333; kill:dispatcher:0@500");
}

// --- Window semantics under recovery ------------------------------------

TEST_F(FaultScenario, KillWithTimeWindow) {
  options_.local = LocalAlgorithm::kRecord;
  options_.window = WindowSpec::ByTime(250 * 1000);
  options_.supervision.checkpoint_interval = 80;
  ExpectExactRecovery("kill:joiner:1@200");
}

TEST_F(FaultScenario, KillWithCountWindow) {
  options_.local = LocalAlgorithm::kBundle;
  options_.window = WindowSpec::ByCount(100);
  options_.supervision.checkpoint_interval = 90;
  ExpectExactRecovery("kill:joiner:2@250");
}

// --- Link faults ---------------------------------------------------------

TEST_F(FaultScenario, DroppedEnvelopeIsRecovered) {
  options_.local = LocalAlgorithm::kRecord;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult faulty =
      RunFaulty("drop:dispatcher:0->joiner:1@50; drop:source:0->dispatcher:0@200");
  ASSERT_TRUE(faulty.ok) << faulty.failure_message;
  EXPECT_EQ(faulty.link_drops_recovered, 2u);
  EXPECT_EQ(Canonical(faulty.pairs), Canonical(clean.pairs));
}

TEST_F(FaultScenario, DuplicatedEnvelopeIsDiscarded) {
  options_.local = LocalAlgorithm::kRecord;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult faulty =
      RunFaulty("dup:dispatcher:0->joiner:0@75; dup:source:0->dispatcher:0@300");
  ASSERT_TRUE(faulty.ok) << faulty.failure_message;
  EXPECT_EQ(faulty.link_dups_discarded, 2u);
  EXPECT_EQ(Canonical(faulty.pairs), Canonical(clean.pairs));
}

TEST_F(FaultScenario, DelayedLinkChangesNothing) {
  options_.local = LocalAlgorithm::kRecord;
  const DistributedJoinResult clean = RunClean();
  const DistributedJoinResult faulty =
      RunFaulty("delay:dispatcher:0->joiner:1@100x2000");
  ASSERT_TRUE(faulty.ok) << faulty.failure_message;
  EXPECT_EQ(faulty.restarts, 0u);
  EXPECT_EQ(Canonical(faulty.pairs), Canonical(clean.pairs));
}

TEST_F(FaultScenario, MixedKillDropDuplicateDelay) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.checkpoint_interval = 120;
  ExpectExactRecovery(
      "kill:joiner:1@180; drop:dispatcher:0->joiner:0@90; "
      "dup:dispatcher:0->joiner:2@140; delay:source:0->dispatcher:0@60x500; "
      "drop:dispatcher:0->joiner:1@400; kill:sink:0@100");
}

TEST_F(FaultScenario, MixedFaultsWithBatchSizeOne) {
  options_.local = LocalAlgorithm::kBundle;
  options_.batch_size = 1;
  options_.supervision.checkpoint_interval = 75;
  ExpectExactRecovery(
      "kill:joiner:0@220; dup:dispatcher:0->joiner:0@30; "
      "drop:dispatcher:0->joiner:2@110");
}

// --- Supervision edge cases ----------------------------------------------

TEST_F(FaultScenario, ExhaustedRestartBudgetFailsTheRun) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.max_restarts = 1;
  const DistributedJoinResult faulty =
      RunFaulty("kill:joiner:1@100; kill:joiner:1@150; kill:joiner:1@200");
  EXPECT_FALSE(faulty.ok);
  EXPECT_NE(faulty.failure_message.find("joiner"), std::string::npos)
      << "failure message should name the component: " << faulty.failure_message;
  EXPECT_NE(faulty.failure_message.find("max_restarts"), std::string::npos);
}

TEST_F(FaultScenario, SupervisionWithoutFaultsIsTransparent) {
  options_.local = LocalAlgorithm::kRecord;
  options_.supervision.checkpoint_interval = 100;
  const DistributedJoinResult clean = RunClean();
  DistributedJoinOptions supervised = options_;
  supervised.supervise = true;
  const DistributedJoinResult result = RunDistributedJoin(stream_, supervised);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_GT(result.checkpoints, 0u);
  EXPECT_EQ(Canonical(result.pairs), Canonical(clean.pairs));
}

TEST(FaultScriptTest, ParsesAllVerbs) {
  const auto script = stream::FaultScript::Parse(
      " kill:joiner:2@500 ;drop:a:0->b:1@9;dup:a:0->b:0@3 ; delay:x:1->y:0@7x250 ");
  ASSERT_TRUE(script.ok()) << script.status().message();
  EXPECT_EQ(script.value().kills().size(), 1u);
  EXPECT_EQ(script.value().link_faults().size(), 3u);
  EXPECT_EQ(script.value().kills()[0].component, "joiner");
  EXPECT_EQ(script.value().kills()[0].task_index, 2);
  EXPECT_EQ(script.value().kills()[0].at_count, 500u);
}

TEST(FaultScriptTest, RejectsMalformedScripts) {
  for (const char* bad : {"kill:joiner@5", "boom:joiner:0@5", "drop:a:0->b:1", "kill:j:0@",
                          "kill:j:x@5", "delay:a:0->b:1@5", "drop:a:0->b:1@0"}) {
    EXPECT_FALSE(stream::FaultScript::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(FaultScriptTest, EmptyScriptIsOkAndEmpty) {
  const auto script = stream::FaultScript::Parse("");
  ASSERT_TRUE(script.ok());
  EXPECT_TRUE(script.value().empty());
}

}  // namespace
}  // namespace dssj
