#include "core/bundle_joiner.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/join_topology.h"
#include "core/record_joiner.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> DupStream(uint64_t seed, size_t n, double dup_fraction) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 3000;
  options.zipf_skew = 0.5;
  options.length = LengthModel::Uniform(4, 30);
  options.duplicate_fraction = dup_fraction;
  options.mutation_rate = 0.06;
  options.dup_locality = 500;
  return WorkloadGenerator(options).Generate(n);
}

TEST(BundleJoinerTest, BundlesActuallyForm) {
  const auto stream = DupStream(31, 2000, 0.6);
  BundleJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                      WindowSpec::Unbounded());
  SingleNodeJoin(stream, joiner);
  const JoinerStats& s = joiner.stats();
  EXPECT_GT(s.members_added, 0u) << "no record ever joined an existing bundle";
  EXPECT_LT(joiner.BundleCount(), joiner.StoredCount())
      << "every record founded its own bundle";
  EXPECT_GT(s.batch_accepts + s.batch_rejects + s.member_diff_resolutions, 0u);
}

TEST(BundleJoinerTest, PivotSelfPairIsExact) {
  BundleJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                      WindowSpec::Unbounded());
  std::vector<ResultPair> pairs;
  const auto cb = [&pairs](const ResultPair& p) { pairs.push_back(p); };
  joiner.Process(MakeRecord(0, 0, {1, 2, 3, 4, 5}), true, true, cb);
  joiner.Process(MakeRecord(1, 1, {1, 2, 3, 4, 5}), true, true, cb);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].partner_seq, 0u);
  EXPECT_EQ(joiner.BundleCount(), 1u);  // duplicate joined the pivot's bundle
  EXPECT_EQ(joiner.StoredCount(), 2u);
}

TEST(BundleJoinerTest, MaxDiffLimitsBundleGrowth) {
  const auto stream = DupStream(32, 1500, 0.6);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 600);
  BundleJoinerOptions tight, loose;
  tight.max_diff = 2;
  loose.max_diff = 1000;
  BundleJoiner a(sim, WindowSpec::Unbounded(), tight);
  BundleJoiner b(sim, WindowSpec::Unbounded(), loose);
  const auto pa = Canonical(SingleNodeJoin(stream, a));
  const auto pb = Canonical(SingleNodeJoin(stream, b));
  EXPECT_EQ(pa, pb) << "max_diff is an efficiency knob, not a semantic one";
  EXPECT_GE(a.BundleCount(), b.BundleCount());
}

TEST(BundleJoinerTest, IndividualVerificationModeIsEquivalent) {
  const auto stream = DupStream(33, 1500, 0.5);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  BundleJoinerOptions batch, individual;
  batch.batch_verify = true;
  individual.batch_verify = false;
  BundleJoiner a(sim, WindowSpec::Unbounded(), batch);
  BundleJoiner b(sim, WindowSpec::Unbounded(), individual);
  const auto pa = Canonical(SingleNodeJoin(stream, a));
  const auto pb = Canonical(SingleNodeJoin(stream, b));
  EXPECT_EQ(pa, pb);
  // Batch verification touches far fewer tokens.
  EXPECT_LT(a.stats().verify.merge_steps, b.stats().verify.merge_steps);
  EXPECT_GT(a.stats().batch_accepts + a.stats().batch_rejects, 0u);
  EXPECT_EQ(b.stats().batch_accepts, 0u);
}

TEST(BundleJoinerTest, AdmissionThresholdControlsBundleTightness) {
  const auto stream = DupStream(34, 1500, 0.6);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 600);
  BundleJoinerOptions loose_opt, tight_opt;
  loose_opt.admission_permille = 600;
  tight_opt.admission_permille = 950;
  BundleJoiner loose(sim, WindowSpec::Unbounded(), loose_opt);
  BundleJoiner tight(sim, WindowSpec::Unbounded(), tight_opt);
  const auto pl = Canonical(SingleNodeJoin(stream, loose));
  const auto pt = Canonical(SingleNodeJoin(stream, tight));
  EXPECT_EQ(pl, pt);
  EXPECT_LE(loose.BundleCount(), tight.BundleCount());
}

TEST(BundleJoinerTest, EvictionDissolvesBundles) {
  BundleJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 800),
                      WindowSpec::ByCount(3));
  const auto cb = [](const ResultPair&) {};
  // Three exact duplicates form one bundle of three members.
  for (uint64_t i = 0; i < 3; ++i) {
    joiner.Process(MakeRecord(i, i, {10, 20, 30, 40}), true, true, cb);
  }
  EXPECT_EQ(joiner.BundleCount(), 1u);
  EXPECT_EQ(joiner.StoredCount(), 3u);
  // Unrelated records push the members out one by one.
  for (uint64_t i = 3; i < 6; ++i) {
    joiner.Process(
        MakeRecord(i, i, {static_cast<TokenId>(100 + 10 * i), static_cast<TokenId>(101 + 10 * i),
                          static_cast<TokenId>(102 + 10 * i)}),
        true, true, cb);
  }
  EXPECT_EQ(joiner.StoredCount(), 3u);
  EXPECT_EQ(joiner.stats().evictions, 3u);
  // The duplicate bundle is fully gone; a fresh duplicate matches nothing.
  std::vector<ResultPair> pairs;
  joiner.Process(MakeRecord(9, 9, {10, 20, 30, 40}), false, true,
                 [&pairs](const ResultPair& p) { pairs.push_back(p); });
  EXPECT_TRUE(pairs.empty());
}

TEST(BundleJoinerTest, TimeWindowMatchesBruteForceUnderHeavyChurn) {
  const auto stream = DupStream(35, 3000, 0.7);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const WindowSpec window = WindowSpec::ByTime(200 * 1000);
  BundleJoiner bundle(sim, window);
  BruteForceJoiner brute(sim, window);
  EXPECT_EQ(Canonical(SingleNodeJoin(stream, bundle)),
            Canonical(SingleNodeJoin(stream, brute)));
  EXPECT_GT(bundle.stats().evictions, 0u);
}

TEST(BundleJoinerTest, BatchVerificationSharesCostAgainstRecordJoiner) {
  // On duplicate-rich streams the bundle joiner should scan fewer postings
  // than the record-at-a-time joiner (bundles collapse posting lists).
  const auto stream = DupStream(36, 4000, 0.7);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  BundleJoiner bundle(sim, WindowSpec::Unbounded());
  RecordJoiner record(sim, WindowSpec::Unbounded());
  const auto pb = Canonical(SingleNodeJoin(stream, bundle));
  const auto pr = Canonical(SingleNodeJoin(stream, record));
  EXPECT_EQ(pb, pr);
  EXPECT_LT(bundle.stats().postings_scanned, record.stats().postings_scanned);
}

TEST(BundleJoinerTest, MemoryAccountingIsMonotoneInWindow) {
  const auto stream = DupStream(37, 2000, 0.4);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  BundleJoiner small(sim, WindowSpec::ByCount(100));
  BundleJoiner large(sim, WindowSpec::ByCount(1500));
  SingleNodeJoin(stream, small);
  SingleNodeJoin(stream, large);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

}  // namespace
}  // namespace dssj
