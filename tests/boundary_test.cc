// Boundary and overflow-adjacent cases: very long records, extreme
// thresholds, and extension combinations not covered elsewhere.

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dssj.h"

namespace dssj {
namespace {

TEST(SimilarityBoundaryTest, LongRecordsDoNotOverflow) {
  // Lengths near kMaxLength exercise the widest intermediate products.
  const size_t big = SimilaritySpec::kMaxLength;
  for (const SimilarityFunction fn :
       {SimilarityFunction::kJaccard, SimilarityFunction::kCosine, SimilarityFunction::kDice}) {
    const SimilaritySpec s(fn, 999);
    EXPECT_TRUE(s.Satisfies(big, big, big));
    EXPECT_FALSE(s.Satisfies(big / 2, big, big));
    EXPECT_GE(s.LengthUpperBound(big / 2), big / 2);
    EXPECT_LE(s.LengthLowerBound(big), big);
    const size_t alpha = s.MinOverlap(big, big);
    EXPECT_LE(alpha, big);
    EXPECT_GT(alpha, big / 2);
    EXPECT_GE(s.PrefixLength(big), 1u);
  }
}

TEST(SimilarityBoundaryTest, ThresholdExtremes) {
  // permille 1: almost everything with any overlap matches.
  const SimilaritySpec loose(SimilarityFunction::kJaccard, 1);
  EXPECT_TRUE(loose.Satisfies(1, 100, 100));
  EXPECT_FALSE(loose.Satisfies(0, 100, 100));
  // Wide but finite length range.
  EXPECT_EQ(loose.LengthLowerBound(1000), 1u);
  EXPECT_EQ(loose.LengthUpperBound(1), 1000u);
}

TEST(SimilarityBoundaryTest, SingleTokenRecords) {
  const SimilaritySpec s(SimilarityFunction::kJaccard, 800);
  EXPECT_TRUE(s.Satisfies(1, 1, 1));
  EXPECT_FALSE(s.Satisfies(0, 1, 1));
  EXPECT_EQ(s.PrefixLength(1), 1u);
  EXPECT_EQ(s.MinOverlap(1, 1), 1u);
  // A 1-token record can only pair with 1-token records at t=0.8.
  EXPECT_EQ(s.LengthUpperBound(1), 1u);
}

TEST(TwoStreamBoundaryTest, SuffixFilterModePreservesResults) {
  using Side = TwoStreamJoiner::Side;
  WorkloadOptions wo;
  wo.seed = 91;
  wo.token_universe = 500;
  wo.duplicate_fraction = 0.4;
  WorkloadGenerator gen(wo);
  Rng side_rng(3);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  RecordJoinerOptions suffixed;
  suffixed.suffix_filter = true;
  TwoStreamJoiner plain(sim, WindowSpec::Unbounded(), WindowSpec::Unbounded());
  TwoStreamJoiner filtered(sim, WindowSpec::Unbounded(), WindowSpec::Unbounded(), suffixed);
  std::vector<TwoStreamJoiner::RsPair> a, b;
  for (int i = 0; i < 800; ++i) {
    const RecordPtr r = gen.Next();
    const Side side = side_rng.Bernoulli(0.5) ? Side::kR : Side::kS;
    plain.Process(side, r, [&a](const TwoStreamJoiner::RsPair& p) { a.push_back(p); });
    filtered.Process(side, r, [&b](const TwoStreamJoiner::RsPair& p) { b.push_back(p); });
  }
  EXPECT_EQ(a, b);  // identical arrival order → identical emission order
  EXPECT_GT(a.size(), 0u);
}

TEST(MinHashBoundaryTest, WorksForCosineAndDice) {
  WorkloadOptions wo;
  wo.seed = 92;
  wo.token_universe = 800;
  wo.duplicate_fraction = 0.5;
  wo.mutation_rate = 0.05;
  const auto stream = WorkloadGenerator(wo).Generate(1500);
  for (const SimilarityFunction fn :
       {SimilarityFunction::kCosine, SimilarityFunction::kDice}) {
    const SimilaritySpec sim(fn, 900);
    MinHashJoiner approx(sim, WindowSpec::Unbounded());
    BruteForceJoiner oracle(sim, WindowSpec::Unbounded());
    const size_t found = SingleNodeJoin(stream, approx).size();
    const size_t truth = SingleNodeJoin(stream, oracle).size();
    ASSERT_GT(truth, 20u);
    // High-similarity pairs are found with near-certainty regardless of the
    // accept predicate (signatures estimate Jaccard, which lower-bounds
    // cosine/dice similarity orderings at these levels).
    EXPECT_GE(static_cast<double>(found), 0.9 * static_cast<double>(truth))
        << SimilarityFunctionName(fn);
  }
}

TEST(BundleBoundaryTest, LongIdenticalRunFormsOneBundle) {
  BundleJoiner joiner(SimilaritySpec(SimilarityFunction::kJaccard, 900),
                      WindowSpec::Unbounded());
  std::vector<TokenId> tokens;
  for (TokenId t = 0; t < 50; ++t) tokens.push_back(t * 3);
  uint64_t results = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    joiner.Process(MakeRecord(i, i, tokens), true, true,
                   [&results](const ResultPair&) { ++results; });
  }
  EXPECT_EQ(joiner.BundleCount(), 1u);
  EXPECT_EQ(joiner.StoredCount(), 200u);
  // Every pair of the 200 duplicates: 200·199/2.
  EXPECT_EQ(results, 200u * 199 / 2);
  // Batch verification should have accepted everything without merges
  // beyond the pivot (one pivot verification per probe).
  EXPECT_EQ(joiner.stats().batch_accepts, results);
  EXPECT_EQ(joiner.stats().member_diff_resolutions, 0u);
}

TEST(WorkloadBoundaryTest, UniverseSmallerThanLengthTerminates) {
  WorkloadOptions wo;
  wo.seed = 93;
  wo.token_universe = 8;
  wo.length = LengthModel::Uniform(20, 30);  // impossible to fill distinctly
  wo.duplicate_fraction = 0.0;
  const auto stream = WorkloadGenerator(wo).Generate(200);
  for (const RecordPtr& r : stream) {
    EXPECT_LE(r->size(), 8u);
    EXPECT_GE(r->size(), 1u);
  }
}

}  // namespace
}  // namespace dssj
