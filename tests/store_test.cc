// Unit coverage of the tiered state store (docs/INTERNALS.md §13): file
// framing, the base+delta checkpoint chain, the spill segment tier, and
// the checkpoint service thread. The torn-write suites truncate and
// bit-flip files at fuzzed offsets and assert recovery always degrades to
// an older consistent chain with a clean Status — never a crash, never a
// silently corrupt payload.

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/checkpoint_service.h"
#include "store/format.h"
#include "store/spill.h"
#include "store/state_store.h"
#include "text/record.h"

namespace dssj::store {
namespace {

/// Unique per-test scratch directory, removed on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string tmpl = ::testing::TempDir() + "dssj_store_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : tmpl;
  }
  ~ScopedTempDir() { RemoveTree(path_); }

  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok()) << path;
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok()) << path;
}

std::vector<std::string> List(const std::string& dir) {
  std::vector<std::string> names;
  EXPECT_TRUE(ListStoreFiles(dir, &names).ok());
  std::sort(names.begin(), names.end());
  return names;
}

// --- Checkpoint file framing --------------------------------------------

TEST(CheckpointFileFormat, RoundTripsKindEpochPayload) {
  const std::string payload = "the quick brown fox\0with embedded nul";
  std::string image;
  EncodeCheckpointFile(CheckpointKind::kDelta, 41, payload, &image);
  CheckpointKind kind = CheckpointKind::kBase;
  uint64_t epoch = 0;
  std::string out;
  ASSERT_TRUE(DecodeCheckpointFile(image.data(), image.size(), &kind, &epoch, &out).ok());
  EXPECT_EQ(kind, CheckpointKind::kDelta);
  EXPECT_EQ(epoch, 41u);
  EXPECT_EQ(out, payload);
}

TEST(CheckpointFileFormat, RejectsEveryTruncationCleanly) {
  std::string image;
  EncodeCheckpointFile(CheckpointKind::kBase, 7, std::string(300, 'x'), &image);
  for (size_t len = 0; len < image.size(); ++len) {
    CheckpointKind kind;
    uint64_t epoch;
    std::string payload;
    const Status st = DecodeCheckpointFile(image.data(), len, &kind, &epoch, &payload);
    EXPECT_FALSE(st.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(CheckpointFileFormat, RejectsEverySingleBitFlip) {
  std::string image;
  EncodeCheckpointFile(CheckpointKind::kBase, 3, "checksummed payload bytes", &image);
  for (size_t i = 0; i < image.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = image;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      CheckpointKind kind;
      uint64_t epoch;
      std::string payload;
      const Status st =
          DecodeCheckpointFile(flipped.data(), flipped.size(), &kind, &epoch, &payload);
      // A flip in the header's epoch field still checks out only if the
      // payload checksum covers it — it does not, so tolerate a decode
      // that "succeeds" only when kind+epoch+payload all survived intact.
      if (st.ok()) {
        EXPECT_EQ(payload, "checksummed payload bytes")
            << "bit flip at byte " << i << " bit " << bit << " corrupted the payload silently";
      }
    }
  }
}

TEST(SegmentFrameFormat, SequentialScanAndTornTail) {
  std::string file;
  std::vector<size_t> offsets;
  for (int i = 0; i < 5; ++i) {
    offsets.push_back(file.size());
    AppendSegmentFrame(std::string(static_cast<size_t>(10 + i * 7), static_cast<char>('a' + i)),
                       &file);
  }
  size_t off = 0;
  for (int i = 0; i < 5; ++i) {
    std::string payload;
    size_t end = 0;
    ASSERT_TRUE(ReadSegmentFrame(file.data(), file.size(), off, &payload, &end).ok());
    EXPECT_EQ(payload, std::string(static_cast<size_t>(10 + i * 7), static_cast<char>('a' + i)));
    off = end;
  }
  EXPECT_EQ(off, file.size());
  // A torn tail: every truncation point inside the last frame must reject
  // that frame but leave the earlier ones readable.
  for (size_t len = offsets.back(); len < file.size(); ++len) {
    std::string payload;
    size_t end = 0;
    EXPECT_FALSE(ReadSegmentFrame(file.data(), len, offsets.back(), &payload, &end).ok());
    ASSERT_TRUE(ReadSegmentFrame(file.data(), len, offsets[3], &payload, &end).ok());
  }
}

TEST(StoreFileNames, ParseRoundTrip) {
  int kind = -1;
  uint64_t id = 0;
  ASSERT_TRUE(ParseStoreFileName(BaseFileName(123), &kind, &id));
  EXPECT_EQ(kind, 0);
  EXPECT_EQ(id, 123u);
  ASSERT_TRUE(ParseStoreFileName(DeltaFileName(7), &kind, &id));
  EXPECT_EQ(kind, 1);
  EXPECT_EQ(id, 7u);
  ASSERT_TRUE(ParseStoreFileName(SegmentFileName(9), &kind, &id));
  EXPECT_EQ(kind, 2);
  EXPECT_EQ(id, 9u);
  EXPECT_FALSE(ParseStoreFileName("README.md", &kind, &id));
  EXPECT_FALSE(ParseStoreFileName("base_.ckpt", &kind, &id));
}

// --- StateStore chain composition ---------------------------------------

TEST(StateStoreTest, ComposesNewestBasePlusContiguousDeltas) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  ASSERT_TRUE(store.WriteBase(0, "B0").ok());
  ASSERT_TRUE(store.WriteDelta(1, "D1").ok());
  ASSERT_TRUE(store.WriteDelta(2, "D2").ok());
  ASSERT_TRUE(store.WriteBase(3, "B3").ok());
  ASSERT_TRUE(store.WriteDelta(4, "D4").ok());
  ASSERT_TRUE(store.WriteDelta(5, "D5").ok());
  RecoveredChain chain;
  ASSERT_TRUE(store.Recover(&chain).ok());
  ASSERT_TRUE(chain.valid);
  EXPECT_EQ(chain.base, "B3");
  EXPECT_EQ(chain.epoch, 5u);
  EXPECT_EQ(chain.deltas, (std::vector<std::string>{"D4", "D5"}));
  // WriteBase(3) must have reclaimed the epoch<3 files.
  const std::vector<std::string> names = List(store.dir());
  EXPECT_EQ(names, (std::vector<std::string>{BaseFileName(3), DeltaFileName(4),
                                             DeltaFileName(5)}));
}

TEST(StateStoreTest, CorruptNewestDeltaTruncatesChain) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  ASSERT_TRUE(store.WriteBase(0, "B0").ok());
  ASSERT_TRUE(store.WriteDelta(1, "D1").ok());
  ASSERT_TRUE(store.WriteDelta(2, "D2").ok());
  const std::string d2 = store.dir() + "/" + DeltaFileName(2);
  std::string bytes = ReadAll(d2);
  bytes.resize(bytes.size() / 2);  // torn write
  WriteAll(d2, bytes);
  RecoveredChain chain;
  ASSERT_TRUE(store.Recover(&chain).ok());
  ASSERT_TRUE(chain.valid);
  EXPECT_EQ(chain.base, "B0");
  EXPECT_EQ(chain.epoch, 1u);
  EXPECT_EQ(chain.deltas, (std::vector<std::string>{"D1"}));
}

TEST(StateStoreTest, CorruptMiddleDeltaStopsBeforeIt) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  ASSERT_TRUE(store.WriteBase(0, "B0").ok());
  ASSERT_TRUE(store.WriteDelta(1, "D1").ok());
  ASSERT_TRUE(store.WriteDelta(2, "D2").ok());
  ASSERT_TRUE(store.WriteDelta(3, "D3").ok());
  const std::string d2 = store.dir() + "/" + DeltaFileName(2);
  std::string bytes = ReadAll(d2);
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  WriteAll(d2, bytes);
  RecoveredChain chain;
  ASSERT_TRUE(store.Recover(&chain).ok());
  ASSERT_TRUE(chain.valid);
  // D3 is intact but unreachable: deltas must be contiguous from the base.
  EXPECT_EQ(chain.epoch, 1u);
  EXPECT_EQ(chain.deltas, (std::vector<std::string>{"D1"}));
}

TEST(StateStoreTest, CorruptBaseFallsBackToOlderBase) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  ASSERT_TRUE(store.WriteBase(0, "B0").ok());
  ASSERT_TRUE(store.WriteDelta(1, "D1").ok());
  // Write the newer base WITHOUT the GC (simulate by writing the file by
  // hand) so the older chain is still on disk to fall back to — matching
  // the real crash window between base write and GC.
  std::string image;
  EncodeCheckpointFile(CheckpointKind::kBase, 2, "B2", &image);
  image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x01);
  WriteAll(store.dir() + "/" + BaseFileName(2), image);
  RecoveredChain chain;
  ASSERT_TRUE(store.Recover(&chain).ok());
  ASSERT_TRUE(chain.valid);
  EXPECT_EQ(chain.base, "B0");
  EXPECT_EQ(chain.deltas, (std::vector<std::string>{"D1"}));
}

TEST(StateStoreTest, NothingValidIsCleanNotFatal) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  RecoveredChain chain;
  ASSERT_TRUE(store.Recover(&chain).ok());  // missing dir
  EXPECT_FALSE(chain.valid);
  ASSERT_TRUE(store.WriteBase(0, "B0").ok());
  WriteAll(store.dir() + "/" + BaseFileName(0), "garbage");
  ASSERT_TRUE(store.Recover(&chain).ok());
  EXPECT_FALSE(chain.valid);
}

TEST(StateStoreTest, TruncateLeavesDirEmpty) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  ASSERT_TRUE(store.WriteBase(0, "B0").ok());
  ASSERT_TRUE(store.WriteDelta(1, "D1").ok());
  ASSERT_TRUE(store.Truncate().ok());
  EXPECT_TRUE(List(store.dir()).empty());
}

/// Fuzz: a chain of several epochs, then truncate or bit-flip one file at
/// a random offset. Recovery must always return OK with either the full
/// chain (payload-epoch prefix intact) or a shorter consistent prefix —
/// and every recovered payload must be one of the originals, bit-exact.
TEST(StateStoreTest, TornWriteFuzz) {
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 60; ++iter) {
    ScopedTempDir tmp;
    StateStore store(tmp.Sub("task"));
    std::vector<std::string> payloads;
    ASSERT_TRUE(store.WriteBase(0, "base-payload-0").ok());
    payloads.push_back("base-payload-0");
    for (uint64_t e = 1; e <= 4; ++e) {
      std::string p = "delta-payload-" + std::to_string(e);
      p.append(static_cast<size_t>(rng() % 100), '#');
      ASSERT_TRUE(store.WriteDelta(e, p).ok());
      payloads.push_back(std::move(p));
    }
    // Pick a victim file and damage it.
    const std::vector<std::string> names = List(store.dir());
    const std::string victim = store.dir() + "/" + names[rng() % names.size()];
    std::string bytes = ReadAll(victim);
    ASSERT_FALSE(bytes.empty());
    if (rng() % 2 == 0) {
      bytes.resize(rng() % bytes.size());  // torn write
    } else {
      const size_t i = rng() % bytes.size();
      bytes[i] = static_cast<char>(bytes[i] ^ (1u << (rng() % 8)));  // bit flip
    }
    WriteAll(victim, bytes);
    RecoveredChain chain;
    ASSERT_TRUE(store.Recover(&chain).ok()) << "iter " << iter;
    if (!chain.valid) continue;  // base was the victim
    ASSERT_LE(chain.epoch, 4u);
    EXPECT_EQ(chain.base, payloads[0]);
    ASSERT_EQ(chain.deltas.size(), static_cast<size_t>(chain.epoch));
    for (size_t i = 0; i < chain.deltas.size(); ++i) {
      EXPECT_EQ(chain.deltas[i], payloads[i + 1]) << "iter " << iter;
    }
  }
}

// --- SpillStore ---------------------------------------------------------

TEST(SpillStoreTest, AppendReadReleaseRoundTrip) {
  ScopedTempDir tmp;
  std::unique_ptr<SpillStore> spill;
  ASSERT_TRUE(
      SpillStore::Open(tmp.Sub("spill"), 1 << 20, SpillStore::GcPolicy::kImmediate, &spill)
          .ok());
  std::vector<SpillHandle> handles;
  for (int i = 0; i < 20; ++i) {
    SpillHandle h;
    ASSERT_TRUE(spill->Append("payload-" + std::to_string(i), &h).ok());
    handles.push_back(h);
  }
  EXPECT_GT(spill->live_bytes(), 0u);
  for (int i = 0; i < 20; ++i) {
    std::string payload;
    ASSERT_TRUE(spill->Read(handles[static_cast<size_t>(i)], &payload).ok());
    EXPECT_EQ(payload, "payload-" + std::to_string(i));
  }
  for (const SpillHandle& h : handles) spill->Release(h);
  EXPECT_EQ(spill->live_bytes(), 0u);
}

TEST(SpillStoreTest, ImmediateGcDeletesRetiredSegments) {
  ScopedTempDir tmp;
  std::unique_ptr<SpillStore> spill;
  // Tiny segment limit: every few appends rotate to a new file.
  ASSERT_TRUE(SpillStore::Open(tmp.Sub("spill"), 64, SpillStore::GcPolicy::kImmediate, &spill)
                  .ok());
  std::vector<SpillHandle> handles;
  for (int i = 0; i < 30; ++i) {
    SpillHandle h;
    ASSERT_TRUE(spill->Append(std::string(40, static_cast<char>('a' + i % 26)), &h).ok());
    handles.push_back(h);
  }
  EXPECT_GT(List(spill->dir()).size(), 1u) << "segment rotation never happened";
  // Release everything except the last (the active segment never retires).
  for (size_t i = 0; i + 1 < handles.size(); ++i) spill->Release(handles[i]);
  EXPECT_LE(List(spill->dir()).size(), 2u) << "retired sealed segments not deleted";
}

TEST(SpillStoreTest, DeferredGcWaitsForRetireMark) {
  ScopedTempDir tmp;
  std::unique_ptr<SpillStore> spill;
  ASSERT_TRUE(
      SpillStore::Open(tmp.Sub("spill"), 64, SpillStore::GcPolicy::kDeferred, &spill).ok());
  std::vector<SpillHandle> handles;
  for (int i = 0; i < 30; ++i) {
    SpillHandle h;
    ASSERT_TRUE(spill->Append(std::string(40, 'z'), &h).ok());
    handles.push_back(h);
  }
  const size_t files_before = List(spill->dir()).size();
  for (size_t i = 0; i + 1 < handles.size(); ++i) spill->Release(handles[i]);
  // Deferred: retired segments stay on disk until the owner confirms a
  // base checkpoint past the retirement.
  EXPECT_EQ(List(spill->dir()).size(), files_before);
  const uint64_t mark = spill->TakeRetireMark();
  ASSERT_TRUE(spill->DeleteRetiredBefore(mark).ok());
  EXPECT_LE(List(spill->dir()).size(), 2u);
}

TEST(SpillStoreTest, ReopenRerefPurgeCycle) {
  ScopedTempDir tmp;
  const std::string dir = tmp.Sub("spill");
  std::vector<SpillHandle> handles;
  {
    std::unique_ptr<SpillStore> spill;
    ASSERT_TRUE(SpillStore::Open(dir, 64, SpillStore::GcPolicy::kDeferred, &spill).ok());
    for (int i = 0; i < 12; ++i) {
      SpillHandle h;
      ASSERT_TRUE(spill->Append("frame-" + std::to_string(i), &h).ok());
      handles.push_back(h);
    }
  }
  // New incarnation: frames come back unclaimed; restore claims the first
  // half (so the tail segments end up with no claimed frames at all).
  std::unique_ptr<SpillStore> spill;
  ASSERT_TRUE(SpillStore::Open(dir, 64, SpillStore::GcPolicy::kDeferred, &spill).ok());
  const size_t claimed = handles.size() / 2;
  for (size_t i = 0; i < claimed; ++i) {
    ASSERT_TRUE(spill->Reref(handles[i])) << i;
  }
  SpillHandle bogus;
  bogus.segment = 99;
  bogus.offset = 0;
  bogus.length = 5;
  EXPECT_FALSE(spill->Reref(bogus));
  const size_t files_before = List(dir).size();
  ASSERT_TRUE(spill->PurgeUnclaimed().ok());
  // Claimed frames read back bit-exact; unclaimed ones lost their claim
  // (a late Reref must fail) and fully-unclaimed segment files are gone.
  for (size_t i = 0; i < claimed; ++i) {
    std::string payload;
    ASSERT_TRUE(spill->Read(handles[i], &payload).ok()) << i;
    EXPECT_EQ(payload, "frame-" + std::to_string(i));
  }
  for (size_t i = claimed; i < handles.size(); ++i) {
    EXPECT_FALSE(spill->Reref(handles[i])) << "purged frame " << i << " re-claimed";
  }
  EXPECT_LT(List(dir).size(), files_before) << "tail segments with no claims kept on disk";
}

TEST(SpillStoreTest, TornSegmentFuzzNeverCrashes) {
  std::mt19937 rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    ScopedTempDir tmp;
    const std::string dir = tmp.Sub("spill");
    std::vector<SpillHandle> handles;
    std::vector<std::string> payloads;
    {
      std::unique_ptr<SpillStore> spill;
      ASSERT_TRUE(SpillStore::Open(dir, 200, SpillStore::GcPolicy::kDeferred, &spill).ok());
      for (int i = 0; i < 15; ++i) {
        std::string p(20 + rng() % 60, static_cast<char>('A' + i));
        SpillHandle h;
        ASSERT_TRUE(spill->Append(p, &h).ok());
        handles.push_back(h);
        payloads.push_back(std::move(p));
      }
    }
    // Damage one segment file at a fuzzed offset.
    const std::vector<std::string> names = List(dir);
    ASSERT_FALSE(names.empty());
    const std::string victim = dir + "/" + names[rng() % names.size()];
    std::string bytes = ReadAll(victim);
    ASSERT_FALSE(bytes.empty());
    if (rng() % 2 == 0) {
      bytes.resize(rng() % bytes.size());
    } else {
      const size_t i = rng() % bytes.size();
      bytes[i] = static_cast<char>(bytes[i] ^ (1u << (rng() % 8)));
    }
    WriteAll(victim, bytes);
    // Reopen: Open must scan cleanly; each surviving frame must Reref and
    // read back bit-exact, each damaged frame must fail cleanly.
    std::unique_ptr<SpillStore> spill;
    ASSERT_TRUE(SpillStore::Open(dir, 200, SpillStore::GcPolicy::kDeferred, &spill).ok())
        << "iter " << iter;
    for (size_t i = 0; i < handles.size(); ++i) {
      if (!spill->Reref(handles[i])) continue;
      std::string payload;
      const Status st = spill->Read(handles[i], &payload);
      if (st.ok()) {
        EXPECT_EQ(payload, payloads[i]) << "iter " << iter << " frame " << i;
      }
    }
  }
}

// --- CheckpointService --------------------------------------------------

TEST(CheckpointServiceTest, DurableEpochAdvancesInOrder) {
  ScopedTempDir tmp;
  StateStore store(tmp.Sub("task"));
  CheckpointService service;
  EXPECT_FALSE(service.DurableSet(0));
  for (uint64_t e = 0; e < 5; ++e) {
    CheckpointJob job;
    job.task_id = 0;
    job.epoch = e;
    job.is_base = e == 0;
    const std::string payload = "epoch-" + std::to_string(e);
    job.blob.is_delta = e != 0;
    job.blob.encode = [payload](std::string* out) { *out = payload; };
    job.store = &store;
    service.Submit(std::move(job));
  }
  service.Barrier(0);
  EXPECT_TRUE(service.DurableSet(0));
  EXPECT_EQ(service.DurableEpoch(0), 4u);
  EXPECT_FALSE(service.Wedged(0));
  RecoveredChain chain;
  ASSERT_TRUE(store.Recover(&chain).ok());
  ASSERT_TRUE(chain.valid);
  EXPECT_EQ(chain.base, "epoch-0");
  EXPECT_EQ(chain.deltas.size(), 4u);
  service.Stop();
}

TEST(CheckpointServiceTest, FailedWriteWedgesAndSkipsLaterJobs) {
  ScopedTempDir tmp;
  // A StateStore rooted at a path occupied by a *file* cannot write.
  WriteAll(tmp.Sub("blocked"), "i am a file");
  StateStore store(tmp.Sub("blocked"));
  CheckpointService service;
  int completions = 0;
  int failures = 0;
  for (uint64_t e = 0; e < 3; ++e) {
    CheckpointJob job;
    job.task_id = 7;
    job.epoch = e;
    job.is_base = true;
    job.blob.encode = [](std::string* out) { *out = "x"; };
    job.store = &store;
    job.on_complete = [&completions, &failures](bool ok, uint64_t, uint64_t) {
      ++completions;
      if (!ok) ++failures;
    };
    service.Submit(std::move(job));
  }
  service.Barrier(7);
  EXPECT_TRUE(service.Wedged(7));
  EXPECT_FALSE(service.DurableSet(7));
  EXPECT_EQ(completions, 3);  // wedge-skips still report
  EXPECT_EQ(failures, 3);
  // Reset clears the wedge for a new incarnation.
  service.Reset(7);
  EXPECT_FALSE(service.Wedged(7));
  service.Stop();
}

TEST(CheckpointServiceTest, TasksAreIndependent) {
  ScopedTempDir tmp;
  WriteAll(tmp.Sub("blocked"), "file");
  StateStore bad(tmp.Sub("blocked"));
  StateStore good(tmp.Sub("good"));
  CheckpointService service;
  CheckpointJob j1;
  j1.task_id = 1;
  j1.epoch = 0;
  j1.is_base = true;
  j1.blob.encode = [](std::string* out) { *out = "x"; };
  j1.store = &bad;
  service.Submit(std::move(j1));
  CheckpointJob j2;
  j2.task_id = 2;
  j2.epoch = 0;
  j2.is_base = true;
  j2.blob.encode = [](std::string* out) { *out = "y"; };
  j2.store = &good;
  service.Submit(std::move(j2));
  service.Barrier(1);
  service.Barrier(2);
  EXPECT_TRUE(service.Wedged(1));
  EXPECT_FALSE(service.Wedged(2));
  EXPECT_TRUE(service.DurableSet(2));
  service.Stop();
}

// --- DetachRecord no-copy regression ------------------------------------

// A record that owns its token bytes must pass through DetachRecord
// untouched — the checkpoint/shed capture path relies on this staying a
// pointer bump, not a deep copy (src/text/record.cc).
TEST(DetachRecordTest, OwningRecordIsNotCopied) {
  RecordPtr owning = MakeRecord(1, 1, {3, 1, 2}, 0);
  ASSERT_FALSE(owning->borrowed());
  const RecordPtr detached = DetachRecord(owning);
  EXPECT_EQ(detached.get(), owning.get()) << "owning record deep-copied on detach";
  EXPECT_EQ(detached->tokens.data(), owning->tokens.data());
  EXPECT_EQ(owning.use_count(), 2);
}

TEST(DetachRecordTest, BorrowedRecordIsDeepCopied) {
  const std::vector<TokenId> backing = {1, 2, 3, 9};
  auto borrowed = std::make_shared<const Record>(
      5, 5, 0, TokenArray::Borrow(backing.data(), backing.size()));
  ASSERT_TRUE(borrowed->borrowed());
  const RecordPtr detached = DetachRecord(borrowed);
  EXPECT_NE(detached.get(), borrowed.get());
  ASSERT_FALSE(detached->borrowed());
  EXPECT_NE(detached->tokens.data(), backing.data());
  ASSERT_EQ(detached->tokens.size(), backing.size());
  EXPECT_TRUE(std::equal(backing.begin(), backing.end(), detached->tokens.begin()));
}

}  // namespace
}  // namespace dssj::store
