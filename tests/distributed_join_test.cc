#include "core/join_topology.h"

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n, double dup_fraction = 0.4) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 500;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 30);
  options.duplicate_fraction = dup_fraction;
  options.mutation_rate = 0.12;
  options.dup_locality = 300;
  return WorkloadGenerator(options).Generate(n);
}

std::vector<ResultPair> Reference(const std::vector<RecordPtr>& stream,
                                  const SimilaritySpec& sim, const WindowSpec& window) {
  BruteForceJoiner joiner(sim, window);
  return Canonical(SingleNodeJoin(stream, joiner));
}

// (strategy, local algorithm, num_joiners, use_time_window)
using DistParam = std::tuple<DistributionStrategy, LocalAlgorithm, int, bool>;

class DistributedJoinEquivalenceTest : public ::testing::TestWithParam<DistParam> {};

TEST_P(DistributedJoinEquivalenceTest, MatchesSingleNodeReference) {
  const auto [strategy, local, joiners, timed] = GetParam();
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  // Time windows have identical semantics in distributed and single-node
  // runs (they depend only on record timestamps); count windows are
  // per-partition by design and are tested at the local level.
  const WindowSpec window = timed ? WindowSpec::ByTime(300 * 1000) : WindowSpec::Unbounded();
  const auto stream = MakeStream(91, 800);

  DistributedJoinOptions options;
  options.sim = sim;
  options.window = window;
  options.strategy = strategy;
  options.local = local;
  options.num_joiners = joiners;
  options.collect_results = true;
  if (strategy == DistributionStrategy::kLengthBased) {
    options.length_partition =
        PlanLengthPartition(stream, sim, joiners, PartitionMethod::kLoadAwareGreedy);
  }

  const DistributedJoinResult result = RunDistributedJoin(stream, options);
  const auto expected = Reference(stream, sim, window);
  const auto actual = Canonical(result.pairs);
  EXPECT_EQ(result.result_count, expected.size());
  ASSERT_EQ(actual.size(), expected.size())
      << DistributionStrategyName(strategy) << "/" << LocalAlgorithmName(local)
      << " joiners=" << joiners;
  EXPECT_EQ(actual, expected);
  EXPECT_GT(expected.size(), 0u) << "vacuous test stream";
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DistributedJoinEquivalenceTest,
    ::testing::Values(
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kRecord, 1, false},
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kRecord, 4, false},
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kRecord, 7, false},
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kRecord, 4, true},
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kBundle, 4, false},
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kBundle, 4, true},
        DistParam{DistributionStrategy::kLengthBased, LocalAlgorithm::kBruteForce, 3, false},
        DistParam{DistributionStrategy::kPrefixBased, LocalAlgorithm::kRecord, 1, false},
        DistParam{DistributionStrategy::kPrefixBased, LocalAlgorithm::kRecord, 4, false},
        DistParam{DistributionStrategy::kPrefixBased, LocalAlgorithm::kRecord, 7, true},
        DistParam{DistributionStrategy::kBroadcast, LocalAlgorithm::kRecord, 4, false},
        DistParam{DistributionStrategy::kBroadcast, LocalAlgorithm::kBundle, 4, false},
        DistParam{DistributionStrategy::kBroadcast, LocalAlgorithm::kRecord, 7, true},
        DistParam{DistributionStrategy::kReplicated, LocalAlgorithm::kRecord, 4, false},
        DistParam{DistributionStrategy::kReplicated, LocalAlgorithm::kBundle, 4, true},
        DistParam{DistributionStrategy::kReplicated, LocalAlgorithm::kRecord, 7, false}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(DistributionStrategyName(std::get<0>(p))) + "_" +
             LocalAlgorithmName(std::get<1>(p)) + "_k" + std::to_string(std::get<2>(p)) +
             (std::get<3>(p) ? "_timed" : "_unbounded");
    });

TEST(DistributedJoinTest, ReplicatedStrategyKeepsGlobalCountWindowSemantics) {
  // Every joiner holds the full window under kReplicated, so a per-joiner
  // count window behaves exactly like the single-node count window — the
  // only strategy with that property.
  const auto stream = MakeStream(44, 700);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  const WindowSpec window = WindowSpec::ByCount(120);
  DistributedJoinOptions options;
  options.sim = sim;
  options.window = window;
  options.strategy = DistributionStrategy::kReplicated;
  options.num_joiners = 5;
  const auto result = RunDistributedJoin(stream, options);
  EXPECT_EQ(Canonical(result.pairs), Reference(stream, sim, window));
  EXPECT_NEAR(result.replication_factor, 5.0, 0.2);
}

TEST(DistributedJoinTest, LengthBasedHasNoReplication) {
  const auto stream = MakeStream(5, 600);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 800);
  options.strategy = DistributionStrategy::kLengthBased;
  options.num_joiners = 6;
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 6, PartitionMethod::kLoadAwareGreedy);
  const auto result = RunDistributedJoin(stream, options);
  // Every non-degenerate record is stored exactly once.
  EXPECT_LE(result.replication_factor, 1.0);
  EXPECT_GT(result.replication_factor, 0.95);
}

TEST(DistributedJoinTest, PrefixBasedReplicatesAndBroadcastDoesNot) {
  const auto stream = MakeStream(6, 600);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
  options.num_joiners = 6;

  options.strategy = DistributionStrategy::kPrefixBased;
  const auto prefix_result = RunDistributedJoin(stream, options);
  EXPECT_GT(prefix_result.replication_factor, 1.0);

  options.strategy = DistributionStrategy::kBroadcast;
  const auto broadcast_result = RunDistributedJoin(stream, options);
  EXPECT_LE(broadcast_result.replication_factor, 1.0);
  // But broadcast probes everywhere: one dispatch message per joiner per
  // record (minus degenerate records).
  EXPECT_GT(broadcast_result.dispatch_messages, prefix_result.dispatch_messages);
}

TEST(DistributedJoinTest, LengthBasedSendsFewerBytesThanBroadcast) {
  const auto stream = MakeStream(7, 800);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 800);
  options.num_joiners = 8;
  options.collect_results = false;

  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 8, PartitionMethod::kLoadAwareGreedy);
  const auto length_result = RunDistributedJoin(stream, options);

  options.strategy = DistributionStrategy::kBroadcast;
  const auto broadcast_result = RunDistributedJoin(stream, options);

  EXPECT_LT(length_result.dispatch_bytes, broadcast_result.dispatch_bytes);
  EXPECT_LT(length_result.remote_bytes, broadcast_result.remote_bytes);
}

TEST(DistributedJoinTest, NoDuplicatePairsUnderAnyStrategy) {
  const auto stream = MakeStream(8, 500);
  for (const DistributionStrategy strategy :
       {DistributionStrategy::kLengthBased, DistributionStrategy::kPrefixBased,
        DistributionStrategy::kBroadcast}) {
    DistributedJoinOptions options;
    options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
    options.strategy = strategy;
    options.num_joiners = 5;
    if (strategy == DistributionStrategy::kLengthBased) {
      options.length_partition =
          PlanLengthPartition(stream, options.sim, 5, PartitionMethod::kUniform);
    }
    const auto result = RunDistributedJoin(stream, options);
    auto canon = Canonical(result.pairs);
    EXPECT_TRUE(std::adjacent_find(canon.begin(), canon.end()) == canon.end())
        << DistributionStrategyName(strategy) << " emitted a duplicate pair";
  }
}

TEST(DistributedJoinTest, MultipleDispatchersNeverDuplicate) {
  const auto stream = MakeStream(9, 800);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  DistributedJoinOptions options;
  options.sim = sim;
  options.strategy = DistributionStrategy::kLengthBased;
  options.num_joiners = 4;
  options.num_dispatchers = 3;
  options.length_partition =
      PlanLengthPartition(stream, sim, 4, PartitionMethod::kLoadAwareGreedy);
  const auto result = RunDistributedJoin(stream, options);
  auto canon = Canonical(result.pairs);
  EXPECT_TRUE(std::adjacent_find(canon.begin(), canon.end()) == canon.end());
  // Cross-dispatcher races may drop pairs but never invent them.
  const auto expected = Reference(stream, sim, WindowSpec::Unbounded());
  std::set<std::pair<uint64_t, uint64_t>> expected_set;
  for (const ResultPair& p : expected) expected_set.insert({p.probe_seq, p.partner_seq});
  for (const ResultPair& p : canon) {
    EXPECT_TRUE(expected_set.count({p.probe_seq, p.partner_seq}))
        << "invented pair " << p.probe_seq << "," << p.partner_seq;
  }
  EXPECT_LE(canon.size(), expected.size());
  // Near-duplicates cluster in stream time, so racing dispatchers lose a
  // visible share of pairs (experiment E10 quantifies this); still, well
  // over half must survive.
  EXPECT_GE(canon.size() * 2, expected.size());
}

TEST(DistributedJoinTest, BatchSizeDoesNotChangeTheResultSet) {
  // The batched transport must be a pure performance lever: per-link FIFO is
  // preserved, so the exactly-once rule sees the same interleavings and every
  // batch size yields the identical pair set.
  const auto stream = MakeStream(12, 800);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  const auto expected = Reference(stream, sim, WindowSpec::Unbounded());
  ASSERT_GT(expected.size(), 0u) << "vacuous test stream";
  for (const size_t batch_size : {size_t{1}, size_t{32}, size_t{256}}) {
    DistributedJoinOptions options;
    options.sim = sim;
    options.strategy = DistributionStrategy::kLengthBased;
    options.num_joiners = 4;
    options.collect_results = true;
    options.batch_size = batch_size;
    options.length_partition =
        PlanLengthPartition(stream, sim, 4, PartitionMethod::kLoadAwareGreedy);
    const auto result = RunDistributedJoin(stream, options);
    EXPECT_EQ(Canonical(result.pairs), expected)
        << "batch_size=" << batch_size << " changed the result set";
  }
}

TEST(DistributedJoinTest, ThroughputAndLatencyArePopulated) {
  const auto stream = MakeStream(10, 400);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 800);
  options.strategy = DistributionStrategy::kBroadcast;
  options.num_joiners = 2;
  options.collect_results = false;
  const auto result = RunDistributedJoin(stream, options);
  EXPECT_EQ(result.input_records, stream.size());
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.throughput_rps, 0.0);
  EXPECT_GT(result.latency.count, 0u);
  EXPECT_GE(result.latency.p99_us, result.latency.p50_us);
  ASSERT_EQ(result.joiner_stats.size(), 2u);
  EXPECT_GT(result.joiner_stats[0].probes + result.joiner_stats[1].probes, 0u);
}

TEST(DistributedJoinTest, ArrivalRatePacesTheSource) {
  const auto stream = MakeStream(11, 200);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 900);
  options.strategy = DistributionStrategy::kBroadcast;
  options.num_joiners = 2;
  options.collect_results = false;
  options.arrival_rate_per_sec = 2000.0;  // 200 records → >= ~0.1 s
  const auto result = RunDistributedJoin(stream, options);
  EXPECT_GE(result.elapsed_seconds, 0.08);
  EXPECT_LE(result.throughput_rps, 2500.0);
}

}  // namespace
}  // namespace dssj
