// Wire-codec equivalence battery: every codec (raw, delta, delta+lz) must
// produce byte-identical join results across every transport (inproc,
// loopback, tcp) at every batch size — the codec is an encoding choice, not
// a semantics choice. Edge values ride along: records with empty token
// arrays, singleton tokens, and ceiling token ids flow through the join;
// NaN doubles and embedded-NUL strings flow through the envelope coding
// directly. A scripted mid-stream disconnect must not break equivalence
// either (frames cross the cut via FIN-after-data + exactly-once replay).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_topology.h"
#include "net/frame_arena.h"
#include "net/transport.h"
#include "net/wire.h"
#include "workload/generator.h"

namespace dssj {
namespace {

using net::WireCodec;
using stream::Envelope;
using stream::MakeTuple;
using stream::Tuple;

constexpr WireCodec kAllCodecs[] = {WireCodec::kRaw, WireCodec::kDelta,
                                    WireCodec::kDeltaLz};

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

/// Workload stream plus hand-built edge records: empty token array,
/// singleton, and tokens at the id ceiling. The join must route and match
/// them identically on every codec (empty records match nothing, but they
/// still cross the wire and the exactly-once ledger).
std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  std::vector<RecordPtr> stream = WorkloadGenerator(options).Generate(n);
  const std::vector<std::vector<TokenId>> edges = {
      {}, {7}, {0xfffffffeu, 0xffffffffu}};
  for (size_t i = 0; i < edges.size(); ++i) {
    auto r = std::make_shared<Record>();
    r->id = 900000 + i;
    r->seq = stream.size();
    r->tokens = edges[i];
    stream.push_back(std::move(r));
  }
  return stream;
}

DistributedJoinOptions BaseOptions(const std::vector<RecordPtr>& stream) {
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
  options.num_joiners = 4;
  options.collect_results = true;
  options.length_partition = PlanLengthPartition(stream, options.sim, options.num_joiners,
                                                 PartitionMethod::kLoadAwareGreedy);
  return options;
}

std::string LocalhostCluster(const std::vector<uint16_t>& ports) {
  std::string spec;
  for (const uint16_t port : ports) {
    if (!spec.empty()) spec += ',';
    spec += "127.0.0.1:" + std::to_string(port);
  }
  return spec;
}

struct ClusterRun {
  DistributedJoinResult coordinator;
  std::vector<DistributedJoinResult> workers;  ///< index = rank - 1
};

ClusterRun RunTcpCluster(const std::vector<RecordPtr>& input,
                         const DistributedJoinOptions& base, const std::string& cluster,
                         int ranks) {
  ClusterRun run;
  run.workers.resize(ranks - 1);
  std::vector<std::thread> threads;
  for (int rank = 1; rank < ranks; ++rank) {
    threads.emplace_back([&, rank] {
      DistributedJoinOptions options = base;
      options.transport = JoinTransport::kTcp;
      options.cluster = cluster;
      options.rank = rank;
      run.workers[rank - 1] = RunDistributedJoin({}, options);
    });
  }
  DistributedJoinOptions options = base;
  options.transport = JoinTransport::kTcp;
  options.cluster = cluster;
  options.rank = 0;
  run.coordinator = RunDistributedJoin(input, options);
  for (std::thread& t : threads) t.join();
  return run;
}

class WireCodecEquivalenceTest : public ::testing::Test {
 protected:
  std::string ClusterOrSkip(int ranks) {
    const std::vector<uint16_t> ports = net::PickFreePorts(ranks);
    if (ports.empty()) return "";
    return LocalhostCluster(ports);
  }
};

TEST_F(WireCodecEquivalenceTest, LoopbackMatchesInprocForEveryCodecAndBatchSize) {
  const auto stream = MakeStream(61, 600);
  DistributedJoinOptions options = BaseOptions(stream);
  const DistributedJoinResult inproc = RunDistributedJoin(stream, options);
  ASSERT_GT(inproc.result_count, 0u) << "vacuous stream";
  const auto reference = Canonical(inproc.pairs);
  options.transport = JoinTransport::kLoopback;
  options.num_workers = 2;
  for (const WireCodec wire : kAllCodecs) {
    options.wire_codec = wire;
    for (const size_t batch : {size_t{1}, size_t{16}, size_t{128}}) {
      options.batch_size = batch;
      const DistributedJoinResult got = RunDistributedJoin(stream, options);
      ASSERT_TRUE(got.ok) << got.failure_message;
      EXPECT_EQ(Canonical(got.pairs), reference)
          << net::WireCodecName(wire) << " batch=" << batch;
      EXPECT_EQ(got.result_count, inproc.result_count);
    }
  }
}

TEST_F(WireCodecEquivalenceTest, TcpMatchesInprocForEveryCodecAndBatchSize) {
  const auto stream = MakeStream(67, 500);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult inproc = RunDistributedJoin(stream, base);
  ASSERT_GT(inproc.result_count, 0u) << "vacuous stream";
  const auto reference = Canonical(inproc.pairs);
  for (const WireCodec wire : kAllCodecs) {
    base.wire_codec = wire;
    for (const size_t batch : {size_t{1}, size_t{16}, size_t{128}}) {
      const std::string cluster = ClusterOrSkip(2);
      if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
      base.batch_size = batch;
      const ClusterRun run = RunTcpCluster(stream, base, cluster, 2);
      ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
      ASSERT_TRUE(run.workers[0].ok) << run.workers[0].failure_message;
      EXPECT_EQ(Canonical(run.coordinator.pairs), reference)
          << net::WireCodecName(wire) << " batch=" << batch;
    }
  }
}

TEST_F(WireCodecEquivalenceTest, ScriptedDisconnectPreservesEquivalence) {
  const auto stream = MakeStream(71, 500);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult inproc = RunDistributedJoin(stream, base);
  const auto reference = Canonical(inproc.pairs);
  // joiner:1 lives on rank 1 (placement i % workers): the cut severs a real
  // socket mid-stream and redials after 20ms. Exactly-once replay must make
  // every codec's result identical to the unfaulted single-process run.
  base.fault_script = "disconnect:dispatcher:0->joiner:1@10x20000";
  base.supervise = true;
  base.supervision.checkpoint_interval = 16;
  for (const WireCodec wire : kAllCodecs) {
    base.wire_codec = wire;
    const std::string cluster = ClusterOrSkip(2);
    if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";
    const ClusterRun run = RunTcpCluster(stream, base, cluster, 2);
    ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
    ASSERT_TRUE(run.workers[0].ok) << run.workers[0].failure_message;
    EXPECT_EQ(Canonical(run.coordinator.pairs), reference) << net::WireCodecName(wire);
    EXPECT_EQ(run.coordinator.result_count, inproc.result_count);
  }
}

TEST_F(WireCodecEquivalenceTest, MixedCodecRanksInteroperate) {
  // The codec byte is per frame, so a cluster whose ranks disagree on
  // --wire_codec must still join correctly: each receiver decodes what it
  // is sent, not what it would send.
  const auto stream = MakeStream(73, 400);
  DistributedJoinOptions base = BaseOptions(stream);
  const DistributedJoinResult inproc = RunDistributedJoin(stream, base);
  const std::string cluster = ClusterOrSkip(2);
  if (cluster.empty()) GTEST_SKIP() << "no localhost sockets available";

  ClusterRun run;
  run.workers.resize(1);
  std::thread worker([&] {
    DistributedJoinOptions options = base;
    options.transport = JoinTransport::kTcp;
    options.cluster = cluster;
    options.rank = 1;
    options.wire_codec = WireCodec::kDeltaLz;  // worker compresses
    run.workers[0] = RunDistributedJoin({}, options);
  });
  DistributedJoinOptions options = base;
  options.transport = JoinTransport::kTcp;
  options.cluster = cluster;
  options.rank = 0;
  options.wire_codec = WireCodec::kRaw;  // coordinator sends raw
  run.coordinator = RunDistributedJoin(stream, options);
  worker.join();

  ASSERT_TRUE(run.coordinator.ok) << run.coordinator.failure_message;
  ASSERT_TRUE(run.workers[0].ok) << run.workers[0].failure_message;
  EXPECT_EQ(Canonical(run.coordinator.pairs), Canonical(inproc.pairs));
}

// ---------------------------------------------------------------------------
// Envelope-level equivalence: the same batch — including NaN doubles,
// embedded-NUL strings, and empty token arrays — must decode to identical
// content from every codec's frame bytes, on both the owning and the
// zero-copy arena parse paths.
// ---------------------------------------------------------------------------

std::vector<Envelope> EdgeValueBatch() {
  const std::vector<std::vector<TokenId>> shapes = {{}, {3}, {1, 2, 900000}};
  std::vector<Envelope> envs;
  for (size_t i = 0; i < shapes.size(); ++i) {
    auto record = std::make_shared<Record>();
    record->id = i;
    record->seq = i + 10;
    record->timestamp = static_cast<int64_t>(i) - 1;
    record->tokens = shapes[i];
    Envelope e;
    e.tuple = MakeTuple(std::shared_ptr<const void>(record),
                        std::numeric_limits<double>::quiet_NaN(),
                        std::string("nul\0middle", 10), int64_t{-1},
                        std::string());
    e.source_task = 2;
    e.link_seq = 1 + i * 3;
    envs.push_back(std::move(e));
  }
  return envs;
}

std::vector<Envelope> DecodeAll(const std::string& bytes, const net::PayloadCodec& codec,
                                const std::shared_ptr<net::FrameArena>& arena) {
  const char* data = bytes.data();
  if (arena != nullptr) {
    arena->bytes() = bytes;
    data = arena->bytes().data();
  }
  std::vector<Envelope> out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    net::Frame frame;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(net::ParseFrame(data + pos, bytes.size() - pos, &codec,
                              net::kDefaultMaxFrameBytes, &frame, &consumed, &error, arena),
              net::ParseStatus::kFrame)
        << error;
    if (consumed == 0) break;
    pos += consumed;
    for (Envelope& e : frame.envelopes) out.push_back(std::move(e));
  }
  return out;
}

void ExpectSameContent(const std::vector<Envelope>& got,
                       const std::vector<Envelope>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].source_task, want[i].source_task);
    EXPECT_EQ(got[i].link_seq, want[i].link_seq);
    const Tuple& g = got[i].tuple;
    const Tuple& w = want[i].tuple;
    ASSERT_EQ(g.num_fields(), w.num_fields());
    const auto grec = g.Ptr<Record>(0);
    const auto wrec = w.Ptr<Record>(0);
    ASSERT_NE(grec, nullptr);
    EXPECT_EQ(grec->id, wrec->id);
    EXPECT_EQ(grec->seq, wrec->seq);
    EXPECT_EQ(grec->timestamp, wrec->timestamp);
    EXPECT_EQ(grec->tokens, wrec->tokens);
    // NaN != NaN, so compare the bit pattern.
    uint64_t gbits, wbits;
    const double gd = g.Double(1), wd = w.Double(1);
    std::memcpy(&gbits, &gd, 8);
    std::memcpy(&wbits, &wd, 8);
    EXPECT_EQ(gbits, wbits);
    EXPECT_EQ(g.Str(2), w.Str(2));
    EXPECT_EQ(g.Str(2).size(), 10u);  // the NUL did not truncate it
    EXPECT_EQ(g.Int(3), w.Int(3));
    EXPECT_EQ(g.Str(4), w.Str(4));
  }
}

TEST(WireEnvelopeEquivalenceTest, EdgeValuesDecodeIdenticallyAcrossCodecs) {
  const net::PayloadCodec codec = RecordWireCodec();
  const std::vector<Envelope> batch = EdgeValueBatch();
  net::FrameArenaPool pool(0);
  for (const WireCodec wire : kAllCodecs) {
    std::string bytes;
    net::AppendEnvelopeFrames(wire, 7, batch, &codec, &bytes);
    ExpectSameContent(DecodeAll(bytes, codec, nullptr), batch);
    ExpectSameContent(DecodeAll(bytes, codec, pool.Acquire()), batch);
  }
}

}  // namespace
}  // namespace dssj
