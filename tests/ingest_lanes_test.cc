// Sharded-ingestion equivalence battery: a run with N ingestion lanes
// (lane-striped spouts, one router instance per lane, seq-merge at each
// joiner) must produce a result set byte-identical to the single-lane run —
// across lane counts, batch sizes, and transports, through dispatcher/
// source kills, link disconnects, and live joiner migrations mid-run. The
// shared adaptive router rides along: with lanes it is exact (same pair
// set) though its replan timing is interleaving-dependent.
#include <algorithm>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/join_topology.h"
#include "net/transport.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 500;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 30);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 300;
  options.timestamp_step_us = 1000;
  return WorkloadGenerator(options).Generate(n);
}

DistributedJoinOptions BaseOptions(const std::vector<RecordPtr>& stream) {
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 750);
  options.num_joiners = 4;
  options.collect_results = true;
  options.length_partition = PlanLengthPartition(stream, options.sim, options.num_joiners,
                                                 PartitionMethod::kLoadAwareGreedy);
  options.supervision.initial_backoff_micros = 50;  // keep fault tests fast
  options.supervision.max_backoff_micros = 1000;
  return options;
}

std::string LocalhostCluster(const std::vector<uint16_t>& ports) {
  std::string spec;
  for (uint16_t port : ports) {
    if (!spec.empty()) spec += ",";
    spec += "127.0.0.1:" + std::to_string(port);
  }
  return spec;
}

DistributedJoinResult RunTcpCoordinator(const std::vector<RecordPtr>& input,
                                        const DistributedJoinOptions& base,
                                        const std::string& cluster, int ranks) {
  std::vector<std::thread> threads;
  for (int rank = 1; rank < ranks; ++rank) {
    threads.emplace_back([&, rank] {
      DistributedJoinOptions options = base;
      options.transport = JoinTransport::kTcp;
      options.cluster = cluster;
      options.rank = rank;
      RunDistributedJoin({}, options);
    });
  }
  DistributedJoinOptions options = base;
  options.transport = JoinTransport::kTcp;
  options.cluster = cluster;
  options.rank = 0;
  DistributedJoinResult result = RunDistributedJoin(input, options);
  for (std::thread& t : threads) t.join();
  return result;
}

class IngestLanesTest : public ::testing::Test {
 protected:
  IngestLanesTest() : stream_(MakeStream(733, 900)), options_(BaseOptions(stream_)) {}

  /// The single-lane inproc run every variant must reproduce byte for byte.
  std::vector<ResultPair> Reference() {
    DistributedJoinOptions reference = options_;
    reference.ingest_lanes = 1;
    DistributedJoinResult result = RunDistributedJoin(stream_, reference);
    EXPECT_TRUE(result.ok) << result.failure_message;
    EXPECT_GT(result.result_count, 0u) << "vacuous test stream";
    return Canonical(result.pairs);
  }

  std::vector<RecordPtr> stream_;
  DistributedJoinOptions options_;
};

// The core matrix of the lane-equivalence guarantee: lanes x batch size x
// transport, every cell byte-identical to lanes=1.
TEST_F(IngestLanesTest, ByteIdenticalAcrossLanesBatchesAndTransports) {
  const std::vector<ResultPair> expected = Reference();
  for (int lanes : {1, 2, 4}) {
    for (size_t batch : {1, 16, 128}) {
      for (JoinTransport transport : {JoinTransport::kInproc, JoinTransport::kLoopback}) {
        DistributedJoinOptions options = options_;
        options.ingest_lanes = lanes;
        options.batch_size = batch;
        options.transport = transport;
        if (transport == JoinTransport::kLoopback) options.num_workers = 2;
        const DistributedJoinResult result = RunDistributedJoin(stream_, options);
        const std::string label = "lanes=" + std::to_string(lanes) +
                                  " batch=" + std::to_string(batch) + " transport=" +
                                  JoinTransportName(transport);
        ASSERT_TRUE(result.ok) << label << ": " << result.failure_message;
        EXPECT_EQ(result.result_count, expected.size()) << label;
        EXPECT_EQ(Canonical(result.pairs), expected) << label;
      }
    }
  }
}

TEST_F(IngestLanesTest, TcpClusterMatchesSingleLane) {
  const std::vector<uint16_t> ports = net::PickFreePorts(2);
  if (ports.empty()) GTEST_SKIP() << "no free localhost ports";
  const std::string cluster = LocalhostCluster(ports);
  const std::vector<ResultPair> expected = Reference();
  for (int lanes : {1, 2, 4}) {
    DistributedJoinOptions options = options_;
    options.ingest_lanes = lanes;
    const DistributedJoinResult result =
        RunTcpCoordinator(stream_, options, cluster, /*ranks=*/2);
    ASSERT_TRUE(result.ok) << "lanes=" << lanes << ": " << result.failure_message;
    EXPECT_EQ(Canonical(result.pairs), expected) << "lanes=" << lanes;
  }
}

TEST_F(IngestLanesTest, PrefixStrategyShardsToo) {
  options_.strategy = DistributionStrategy::kPrefixBased;
  options_.length_partition = LengthPartition();
  const std::vector<ResultPair> expected = Reference();
  DistributedJoinOptions options = options_;
  options.ingest_lanes = 4;
  const DistributedJoinResult result = RunDistributedJoin(stream_, options);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_EQ(Canonical(result.pairs), expected);
}

// Lane-aware fault DSL: kill a dispatcher lane, a source lane, and a
// joiner mid-stream. Recovery replays through the lane merge (checkpointed
// merge buffers + watermark cadence), so the result set must still be the
// clean single-lane set.
TEST_F(IngestLanesTest, RecoversExactlyFromLaneKills) {
  const std::vector<ResultPair> expected = Reference();
  DistributedJoinOptions faulty = options_;
  faulty.ingest_lanes = 4;
  faulty.supervise = true;
  faulty.fault_script = "kill:dispatcher:2@150; kill:source:1@250; kill:joiner:1@300";
  const DistributedJoinResult result = RunDistributedJoin(stream_, faulty);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_GT(result.restarts, 0u);
  EXPECT_EQ(result.result_count, expected.size());
  EXPECT_EQ(Canonical(result.pairs), expected);
}

// Severed link mid-stream (loopback wire path): frames cross the cut via
// FIN-after-data + exactly-once replay; lane merge must come out unharmed.
TEST_F(IngestLanesTest, SurvivesDisconnectUnderLanes) {
  const std::vector<ResultPair> expected = Reference();
  DistributedJoinOptions faulty = options_;
  faulty.ingest_lanes = 2;
  faulty.transport = JoinTransport::kLoopback;
  faulty.num_workers = 2;
  faulty.supervise = true;
  faulty.fault_script = "disconnect:dispatcher:1->joiner:1@100x2000";
  const DistributedJoinResult result = RunDistributedJoin(stream_, faulty);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_EQ(Canonical(result.pairs), expected);
}

// A live joiner migration while four lanes are feeding it: the migrated
// snapshot carries the merge buffers and lane frontiers.
TEST_F(IngestLanesTest, ElasticMigrationMidRunStaysExact) {
  const std::vector<ResultPair> expected = Reference();
  DistributedJoinOptions elastic = options_;
  elastic.ingest_lanes = 4;
  elastic.fault_script = "migrate:joiner:1->2@300; migrate:joiner:1->0@600";
  // Pace the source so the scheduled migrations land mid-stream.
  elastic.arrival_rate_per_sec = 25'000;
  const DistributedJoinResult result = RunDistributedJoin(stream_, elastic);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_EQ(result.migrations, 2u);
  EXPECT_EQ(Canonical(result.pairs), expected);
}

// Adaptive routing with lanes shares one CAS-published epoch list across
// all lane routers. Replan *timing* depends on lane interleaving, so the
// guarantee is exactness (the brute-force pair set), not byte-identical
// replan counters.
TEST_F(IngestLanesTest, SharedAdaptiveRouterStaysExact) {
  options_.window = WindowSpec::ByTime(300 * 1000);
  BruteForceJoiner brute(options_.sim, options_.window);
  const std::vector<ResultPair> expected = Canonical(SingleNodeJoin(stream_, brute));
  ASSERT_GT(expected.size(), 0u);
  DistributedJoinOptions adaptive = options_;
  adaptive.adaptive = true;
  adaptive.adaptive_options.replan_interval = 150;
  adaptive.adaptive_options.half_life_records = 300;
  adaptive.ingest_lanes = 4;
  const DistributedJoinResult result = RunDistributedJoin(stream_, adaptive);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_EQ(Canonical(result.pairs), expected);
}

TEST_F(IngestLanesTest, RejectsStatefulRoutersAndMultipleDispatchers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DistributedJoinOptions broadcast = options_;
  broadcast.ingest_lanes = 2;
  broadcast.strategy = DistributionStrategy::kBroadcast;
  EXPECT_DEATH(RunDistributedJoin(stream_, broadcast), "stateless routing strategy");
  DistributedJoinOptions multi = options_;
  multi.ingest_lanes = 2;
  multi.num_dispatchers = 2;
  EXPECT_DEATH(RunDistributedJoin(stream_, multi), "num_dispatchers must stay 1");
}

TEST_F(IngestLanesTest, RejectsNonMonotoneSeqs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<RecordPtr> shuffled = stream_;
  std::swap(shuffled[10], shuffled[11]);
  DistributedJoinOptions options = options_;
  options.ingest_lanes = 2;
  EXPECT_DEATH(RunDistributedJoin(shuffled, options), "strictly increasing");
}

}  // namespace
}  // namespace dssj
