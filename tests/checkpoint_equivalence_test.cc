// Equivalence of the tiered checkpoint paths (docs/INTERNALS.md §13):
// sync full-image checkpoints, async base+delta chains, and the on-disk
// spill tier must all recover a faulted run to the exact result set of the
// failure-free run — across batch sizes, delta cadences, and kills landing
// mid-checkpoint. The joiner-level suites additionally check that a chain
// of FreezeBase + FreezeDelta blobs composes to a byte-identical snapshot.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle_joiner.h"
#include "core/join_topology.h"
#include "core/record_joiner.h"
#include "core/two_stream_joiner.h"
#include "store/format.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  options.timestamp_step_us = 1000;
  return WorkloadGenerator(options).Generate(n);
}

class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string tmpl = ::testing::TempDir() + "dssj_ckpt_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : tmpl;
  }
  ~ScopedTempDir() { store::RemoveTree(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- Joiner-level: base + delta chain composes byte-identically ----------

std::string EncodeNow(store::FrozenBlob blob) {
  std::string out;
  blob.encode(&out);
  return out;
}

/// Drives `live` and a chain-restored replica through the same stream and
/// asserts the replica's full snapshot is byte-identical at every freeze.
template <typename Feed>
void CheckDeltaChain(RecordJoiner& live, RecordJoiner& replica,
                     const std::vector<RecordPtr>& stream, const Feed& feed) {
  constexpr size_t kInterval = 37;
  std::string base;
  std::vector<std::string> deltas;
  size_t fed = 0;
  bool based = false;
  for (const RecordPtr& r : stream) {
    feed(live, r);
    if (++fed % kInterval != 0) continue;
    if (!based) {
      store::FrozenBlob fb = live.FreezeBase();
      EXPECT_FALSE(fb.is_delta);
      base = EncodeNow(std::move(fb));
      based = true;
    } else {
      store::FrozenBlob fb = live.FreezeDelta();
      EXPECT_TRUE(fb.is_delta);
      deltas.push_back(EncodeNow(std::move(fb)));
    }
    // Compose base + deltas into the replica and compare full images.
    replica.Restore(base);
    for (const std::string& d : deltas) replica.RestoreDelta(d);
    std::string live_img;
    std::string replica_img;
    live.Snapshot(&live_img);
    replica.Snapshot(&replica_img);
    ASSERT_EQ(live_img, replica_img) << "chain diverged after " << fed << " records ("
                                     << deltas.size() << " deltas)";
  }
  ASSERT_TRUE(based) << "stream too short to freeze anything";
  ASSERT_FALSE(deltas.empty()) << "stream too short to exercise deltas";
}

TEST(JoinerDeltaChain, RecordJoinerComposesExactly) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const WindowSpec window = WindowSpec::ByCount(120);  // pops exercise the FIFO delta
  RecordJoinerOptions opts;
  RecordJoiner live(sim, window, opts);
  RecordJoiner replica(sim, window, opts);
  const auto stream = MakeStream(99, 400);
  CheckDeltaChain(live, replica, stream, [](RecordJoiner& j, const RecordPtr& r) {
    j.Process(r, /*store=*/true, /*probe=*/true, [](const ResultPair&) {});
  });
}

// BundleJoiner state lives in unordered maps, so two semantically equal
// instances serialize in different byte orders — the oracle here is
// behavioral: the chain-restored replica must emit exactly what a clone of
// the live joiner emits on an identical continuation, with equal counts.
TEST(JoinerDeltaChain, BundleJoinerComposesExactly) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const WindowSpec window = WindowSpec::ByCount(120);
  BundleJoinerOptions opts;
  BundleJoiner live(sim, window, opts);
  constexpr size_t kInterval = 37;
  constexpr size_t kContinuation = 60;
  std::string base;
  std::vector<std::string> deltas;
  const auto stream = MakeStream(7, 500);
  size_t fed = 0;
  bool based = false;
  for (const RecordPtr& r : stream) {
    live.Process(r, true, true, [](const ResultPair&) {});
    if (++fed % kInterval != 0 || fed + kContinuation > stream.size()) continue;
    if (!based) {
      base = EncodeNow(live.FreezeBase());
      based = true;
    } else {
      store::FrozenBlob fb = live.FreezeDelta();
      EXPECT_TRUE(fb.is_delta);
      deltas.push_back(EncodeNow(std::move(fb)));
    }
    BundleJoiner replica(sim, window, opts);
    replica.Restore(base);
    for (const std::string& d : deltas) replica.RestoreDelta(d);
    std::string live_img;
    live.Snapshot(&live_img);
    BundleJoiner clone(sim, window, opts);
    clone.Restore(live_img);
    // Not MemoryBytes: that measures vector capacity, which differs
    // between exact-reserve (full restore) and push_back growth (delta).
    ASSERT_EQ(replica.BundleCount(), clone.BundleCount()) << "after " << fed;
    std::vector<ResultPair> from_replica;
    std::vector<ResultPair> from_clone;
    for (size_t i = fed; i < fed + kContinuation; ++i) {
      replica.Process(stream[i], true, true,
                      [&](const ResultPair& p) { from_replica.push_back(p); });
      clone.Process(stream[i], true, true,
                    [&](const ResultPair& p) { from_clone.push_back(p); });
    }
    ASSERT_EQ(Canonical(from_replica), Canonical(from_clone))
        << "bundle chain diverged after " << fed << " (" << deltas.size() << " deltas)";
  }
  ASSERT_FALSE(deltas.empty());
}

TEST(JoinerDeltaChain, TwoStreamJoinerComposesExactly) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  TwoStreamJoiner live(sim, WindowSpec::ByCount(80), WindowSpec::ByCount(80));
  TwoStreamJoiner replica(sim, WindowSpec::ByCount(80), WindowSpec::ByCount(80));
  constexpr size_t kInterval = 41;
  std::string base;
  std::vector<std::string> deltas;
  size_t fed = 0;
  bool based = false;
  for (const RecordPtr& r : MakeStream(13, 400)) {
    const auto side = fed % 2 == 0 ? TwoStreamJoiner::Side::kR : TwoStreamJoiner::Side::kS;
    live.Process(side, r, [](const TwoStreamJoiner::RsPair&) {});
    if (++fed % kInterval != 0) continue;
    if (!based) {
      store::FrozenBlob fb = live.FreezeBase();
      EXPECT_FALSE(fb.is_delta);
      base = EncodeNow(std::move(fb));
      based = true;
    } else {
      store::FrozenBlob fb = live.FreezeDelta();
      EXPECT_TRUE(fb.is_delta);
      deltas.push_back(EncodeNow(std::move(fb)));
    }
    replica.Restore(base);
    for (const std::string& d : deltas) replica.RestoreDelta(d);
    std::string live_img;
    std::string replica_img;
    live.Snapshot(&live_img);
    replica.Snapshot(&replica_img);
    ASSERT_EQ(live_img, replica_img) << "two-stream chain diverged after " << fed;
  }
  ASSERT_FALSE(deltas.empty());
}

/// The frozen view must be immune to mutation after the freeze: encode
/// after feeding more records and compare against encoding immediately.
TEST(JoinerDeltaChain, FrozenViewIsImmutableUnderConcurrentMutation) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  RecordJoiner a(sim, WindowSpec::ByCount(100), {});
  RecordJoiner b(sim, WindowSpec::ByCount(100), {});
  const auto stream = MakeStream(21, 300);
  for (size_t i = 0; i < 200; ++i) {
    a.Process(stream[i], true, true, [](const ResultPair&) {});
    b.Process(stream[i], true, true, [](const ResultPair&) {});
  }
  store::FrozenBlob fa = a.FreezeBase();
  const std::string eager = EncodeNow(b.FreezeBase());  // reference encoding
  for (size_t i = 200; i < stream.size(); ++i) {
    a.Process(stream[i], true, true, [](const ResultPair&) {});
  }
  EXPECT_EQ(EncodeNow(std::move(fa)), eager)
      << "frozen view changed under post-freeze mutation";
}

// --- Topology-level: sync vs async vs clean ------------------------------

/// Fixture: one clean unsupervised run is the oracle; every store
/// configuration, batch size, and fault schedule must reproduce it.
class StoreEquivalence : public ::testing::Test {
 protected:
  StoreEquivalence() {
    stream_ = MakeStream(417, 900);
    options_.sim = SimilaritySpec(SimilarityFunction::kJaccard, 750);
    options_.num_joiners = 3;
    options_.collect_results = true;
    options_.length_partition = PlanLengthPartition(stream_, options_.sim, options_.num_joiners,
                                                    PartitionMethod::kLoadAwareGreedy);
    options_.supervision.initial_backoff_micros = 50;
    options_.supervision.max_restarts = 16;
    options_.supervision.max_backoff_micros = 1000;
    options_.supervision.checkpoint_interval = 64;
  }

  DistributedJoinResult RunClean() {
    DistributedJoinOptions clean = options_;
    clean.supervise = false;
    clean.fault_script.clear();
    clean.store_dir.clear();
    clean.spill_watermark = 0.0;
    clean.max_index_bytes = 0;
    DistributedJoinResult result = RunDistributedJoin(stream_, clean);
    EXPECT_TRUE(result.ok);
    return result;
  }

  void ExpectMatchesClean(const std::string& fault_script, bool expect_restarts) {
    const DistributedJoinResult clean = RunClean();
    DistributedJoinOptions cfg = options_;
    cfg.supervise = true;
    cfg.fault_script = fault_script;
    const DistributedJoinResult got = RunDistributedJoin(stream_, cfg);
    ASSERT_TRUE(got.ok) << got.failure_message;
    if (expect_restarts) {
      EXPECT_GT(got.restarts, 0u);
    }
    EXPECT_EQ(got.result_count, clean.result_count);
    const auto expect = Canonical(clean.pairs);
    const auto actual = Canonical(got.pairs);
    ASSERT_EQ(actual.size(), expect.size());
    EXPECT_EQ(actual, expect) << "recovered result set diverged";
    ASSERT_GT(expect.size(), 0u) << "vacuous test stream";
  }

  std::vector<RecordPtr> stream_;
  DistributedJoinOptions options_;
};

TEST_F(StoreEquivalence, SyncStoreMatchesCleanUnderKills) {
  ScopedTempDir tmp;
  options_.store_dir = tmp.path();
  options_.checkpoint_mode = store::CheckpointMode::kSync;
  ExpectMatchesClean("kill:joiner:1@150; kill:joiner:0@500", /*expect_restarts=*/true);
  // The sync store mirrors every checkpoint as a durable base: the store
  // root must hold per-task chain directories.
  size_t task_dirs = 0;
  for (const auto& e : std::filesystem::directory_iterator(tmp.path())) {
    if (e.is_directory() && e.path().filename().string().rfind("task_", 0) == 0) ++task_dirs;
  }
  EXPECT_GT(task_dirs, 0u) << "sync mode wrote no task directories";
}

TEST_F(StoreEquivalence, AsyncDeltaMatchesCleanAcrossBatchSizes) {
  for (const size_t batch : {size_t{1}, size_t{7}, size_t{32}}) {
    ScopedTempDir tmp;
    options_.store_dir = tmp.path();
    options_.checkpoint_mode = store::CheckpointMode::kAsync;
    options_.delta_base_interval = 4;
    options_.batch_size = batch;
    SCOPED_TRACE("batch=" + std::to_string(batch));
    ExpectMatchesClean("kill:joiner:1@150; kill:joiner:2@600", /*expect_restarts=*/true);
  }
}

TEST_F(StoreEquivalence, AsyncEveryCadenceMatchesClean) {
  // interval 1 = every checkpoint a base; 0 = never compact (all deltas
  // after the seed base); 4 = mixed.
  for (const uint32_t interval : {0u, 1u, 4u}) {
    ScopedTempDir tmp;
    options_.store_dir = tmp.path();
    options_.checkpoint_mode = store::CheckpointMode::kAsync;
    options_.delta_base_interval = interval;
    SCOPED_TRACE("delta_base_interval=" + std::to_string(interval));
    ExpectMatchesClean("kill:joiner:0@300", /*expect_restarts=*/true);
  }
}

TEST_F(StoreEquivalence, KillLandingMidCheckpointWindow) {
  // Checkpoint boundaries land every 64 executed tuples per task; kills at
  // boundary-straddling counts catch a task between freeze and durable
  // confirm (the async race the log-truncation rule must win).
  ScopedTempDir tmp;
  options_.store_dir = tmp.path();
  options_.checkpoint_mode = store::CheckpointMode::kAsync;
  options_.delta_base_interval = 2;
  ExpectMatchesClean("kill:joiner:0@64; kill:joiner:1@65; kill:joiner:2@129",
                     /*expect_restarts=*/true);
}

TEST_F(StoreEquivalence, RepeatedKillsOfOneTask) {
  ScopedTempDir tmp;
  options_.store_dir = tmp.path();
  options_.checkpoint_mode = store::CheckpointMode::kAsync;
  options_.delta_base_interval = 4;
  ExpectMatchesClean("kill:joiner:1@100; kill:joiner:1@101; kill:joiner:1@400",
                     /*expect_restarts=*/true);
}

TEST_F(StoreEquivalence, AsyncCountsDeltasAndBasesSeparately) {
  ScopedTempDir tmp;
  options_.store_dir = tmp.path();
  options_.checkpoint_mode = store::CheckpointMode::kAsync;
  options_.delta_base_interval = 4;
  options_.supervise = true;
  const DistributedJoinResult got = RunDistributedJoin(stream_, options_);
  ASSERT_TRUE(got.ok) << got.failure_message;
  EXPECT_GT(got.delta_checkpoints, 0u);
  EXPECT_GT(got.base_checkpoints, 0u);  // at least the epoch-0 seeds
  EXPECT_GT(got.delta_checkpoint_bytes, 0u);
  EXPECT_GT(got.base_checkpoint_bytes, 0u);
  // Deltas must actually be smaller than bases on average — that is the
  // entire point of the incremental path.
  EXPECT_LT(got.delta_checkpoint_bytes / std::max<uint64_t>(1, got.delta_checkpoints),
            got.base_checkpoint_bytes / std::max<uint64_t>(1, got.base_checkpoints));
}

// --- Spill tier: windows larger than the memory budget -------------------

TEST_F(StoreEquivalence, SpillPreservesRecallWhereEvictionLosesIt) {
  // A count window far above what max_index_bytes can hold: the eviction
  // run must drop stored records (losing pairs), the spill run must match
  // the unlimited-memory oracle exactly.
  options_.window = WindowSpec::ByCount(600);
  options_.max_index_bytes = 20 * 1024;  // per joiner; far below window need

  const DistributedJoinResult oracle = RunClean();  // unlimited memory

  DistributedJoinOptions evict = options_;
  evict.supervise = true;
  const DistributedJoinResult evicted = RunDistributedJoin(stream_, evict);
  ASSERT_TRUE(evicted.ok) << evicted.failure_message;
  EXPECT_GT(evicted.budget_evictions, 0u) << "budget never engaged; test is vacuous";
  EXPECT_LT(evicted.result_count, oracle.result_count)
      << "eviction lost nothing; shrink max_index_bytes";

  ScopedTempDir tmp;
  DistributedJoinOptions spill = options_;
  spill.supervise = true;
  spill.store_dir = tmp.path();
  spill.checkpoint_mode = store::CheckpointMode::kAsync;
  spill.spill_watermark = 0.5;
  spill.store_segment_bytes = 16 * 1024;
  const DistributedJoinResult spilled = RunDistributedJoin(stream_, spill);
  ASSERT_TRUE(spilled.ok) << spilled.failure_message;
  EXPECT_GT(spilled.spilled_bytes, 0u) << "nothing spilled; test is vacuous";
  EXPECT_GT(spilled.spill_reads, 0u) << "no probe ever read a cold record";
  EXPECT_EQ(spilled.result_count, oracle.result_count);
  EXPECT_EQ(Canonical(spilled.pairs), Canonical(oracle.pairs))
      << "spill tier changed the result set";
}

TEST_F(StoreEquivalence, SpillSurvivesKills) {
  options_.window = WindowSpec::ByCount(600);
  options_.max_index_bytes = 20 * 1024;
  const DistributedJoinResult oracle = RunClean();

  ScopedTempDir tmp;
  DistributedJoinOptions spill = options_;
  spill.supervise = true;
  spill.store_dir = tmp.path();
  spill.checkpoint_mode = store::CheckpointMode::kAsync;
  spill.delta_base_interval = 3;
  spill.spill_watermark = 0.5;
  spill.store_segment_bytes = 16 * 1024;
  spill.fault_script = "kill:joiner:0@250; kill:joiner:1@550";
  const DistributedJoinResult got = RunDistributedJoin(stream_, spill);
  ASSERT_TRUE(got.ok) << got.failure_message;
  EXPECT_GT(got.restarts, 0u);
  EXPECT_GT(got.spilled_bytes, 0u);
  EXPECT_EQ(got.result_count, oracle.result_count);
  EXPECT_EQ(Canonical(got.pairs), Canonical(oracle.pairs))
      << "spill recovery diverged from the oracle";
}

TEST_F(StoreEquivalence, SyncSpillAlsoExact) {
  options_.window = WindowSpec::ByCount(600);
  options_.max_index_bytes = 20 * 1024;
  const DistributedJoinResult oracle = RunClean();

  ScopedTempDir tmp;
  DistributedJoinOptions spill = options_;
  spill.supervise = true;
  spill.store_dir = tmp.path();
  spill.checkpoint_mode = store::CheckpointMode::kSync;
  spill.spill_watermark = 0.5;
  spill.store_segment_bytes = 16 * 1024;
  spill.fault_script = "kill:joiner:2@400";
  const DistributedJoinResult got = RunDistributedJoin(stream_, spill);
  ASSERT_TRUE(got.ok) << got.failure_message;
  EXPECT_GT(got.spilled_bytes, 0u);
  EXPECT_EQ(got.result_count, oracle.result_count);
  EXPECT_EQ(Canonical(got.pairs), Canonical(oracle.pairs));
}

// Bundle joiner keeps PR 3 eviction (no per-record cold granularity): a
// spill-configured bundle run must still work, just without spilling.
TEST_F(StoreEquivalence, BundleJoinerIgnoresSpillGracefully) {
  options_.local = LocalAlgorithm::kBundle;
  options_.window = WindowSpec::ByCount(400);
  options_.max_index_bytes = 32 * 1024;
  ScopedTempDir tmp;
  DistributedJoinOptions cfg = options_;
  cfg.supervise = true;
  cfg.store_dir = tmp.path();
  cfg.checkpoint_mode = store::CheckpointMode::kAsync;
  cfg.spill_watermark = 0.5;
  const DistributedJoinResult got = RunDistributedJoin(stream_, cfg);
  ASSERT_TRUE(got.ok) << got.failure_message;
  EXPECT_EQ(got.spilled_bytes, 0u) << "bundle joiner must not spill";
  EXPECT_GT(got.result_count, 0u);
}

// After a healthy run every task directory must hold exactly one live
// chain (newest base + trailing deltas) — no tmp files, no stale epochs.
TEST_F(StoreEquivalence, StoreDirHygieneAfterRun) {
  ScopedTempDir tmp;
  options_.store_dir = tmp.path();
  options_.checkpoint_mode = store::CheckpointMode::kAsync;
  options_.delta_base_interval = 4;
  options_.supervise = true;
  const DistributedJoinResult got = RunDistributedJoin(stream_, options_);
  ASSERT_TRUE(got.ok) << got.failure_message;
  size_t task_dirs = 0;
  for (const auto& e : std::filesystem::directory_iterator(tmp.path())) {
    if (!e.is_directory()) continue;
    const std::string t = e.path().filename().string();
    if (t.rfind("task_", 0) != 0) continue;
    ++task_dirs;
    int bases = 0;
    for (const auto& f : std::filesystem::directory_iterator(e.path())) {
      const std::string name = f.path().filename().string();
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << "tmp litter: " << t << "/" << name;
      int kind = 0;
      uint64_t id = 0;
      ASSERT_TRUE(store::ParseStoreFileName(name, &kind, &id))
          << "foreign file in store dir: " << t << "/" << name;
      if (kind == 0) ++bases;
    }
    EXPECT_LE(bases, 1) << "stale base epochs in " << t;
  }
  EXPECT_GT(task_dirs, 0u);
}

}  // namespace
}  // namespace dssj
