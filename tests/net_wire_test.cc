// Wire-format tests: tuple encoding round-trips every Value alternative in
// every codec, frame parsing is incremental, and malformed inputs (truncated
// bodies, oversized lengths, non-canonical varints, non-monotone token
// deltas, lying compressed sections) are rejected instead of crashing — the
// parser faces bytes from the network, not from this process.
//
// The fuzz battery at the bottom is the satellite required by PR 7: >= 5000
// structured mutational iterations over seed frame streams in all three
// codecs, parsed both with and without a frame arena (the zero-copy path),
// under ASan/UBSan in CI.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/join_topology.h"
#include "gtest/gtest.h"
#include "net/block_compress.h"
#include "net/frame_arena.h"
#include "net/wire.h"
#include "text/record.h"

namespace dssj::net {
namespace {

using stream::Envelope;
using stream::MakeTuple;
using stream::Tuple;

constexpr WireCodec kAllCodecs[] = {WireCodec::kRaw, WireCodec::kDelta,
                                    WireCodec::kDeltaLz};
// Payload-section codings accepted by EncodeTuple/DecodeTuple (kDeltaLz
// compresses a kDelta section, so at tuple granularity only these two
// exist).
constexpr WireCodec kTupleCodings[] = {WireCodec::kRaw, WireCodec::kDelta};

Record MakeTestRecord(uint64_t id, std::vector<TokenId> tokens) {
  Record r;
  r.id = id;
  r.seq = id + 100;
  r.timestamp = static_cast<int64_t>(id) * 7 - 3;
  r.tokens = std::move(tokens);
  return r;
}

Tuple RoundTrip(WireCodec wire, const Tuple& in, const PayloadCodec* codec) {
  std::string bytes;
  EncodeTuple(wire, in, codec, &bytes);
  SafeBinaryReader r(bytes.data(), bytes.size());
  Tuple out;
  EXPECT_TRUE(DecodeTuple(wire, r, codec, nullptr, &out));
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(WireTupleTest, RoundTripsScalarsAndStrings) {
  for (const WireCodec wire : kTupleCodings) {
    Tuple in = MakeTuple(int64_t{-42}, 3.5, std::string("hello \0 wire", 12),
                         int64_t{INT64_MIN}, std::string());
    in.set_payload_bytes(99);
    const Tuple out = RoundTrip(wire, in, nullptr);
    ASSERT_EQ(out.num_fields(), 5u);
    EXPECT_EQ(out.Int(0), -42);
    EXPECT_EQ(out.Double(1), 3.5);
    EXPECT_EQ(out.Str(2), std::string("hello \0 wire", 12));
    EXPECT_EQ(out.Int(3), INT64_MIN);
    EXPECT_EQ(out.Str(4), "");
    EXPECT_EQ(out.payload_bytes(), 99u);
  }
}

TEST(WireTupleTest, RoundTripsDoubleBitPatterns) {
  for (const WireCodec wire : kTupleCodings) {
    for (const double d : {0.0, -0.0, 1e300, -1e-300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()}) {
      const Tuple out = RoundTrip(wire, MakeTuple(d), nullptr);
      uint64_t in_bits, out_bits;
      std::memcpy(&in_bits, &d, 8);
      const double got = out.Double(0);
      std::memcpy(&out_bits, &got, 8);
      EXPECT_EQ(in_bits, out_bits);
    }
    // NaN must survive bit-exactly too (== comparison would lie).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const Tuple out = RoundTrip(wire, MakeTuple(nan), nullptr);
    EXPECT_TRUE(std::isnan(out.Double(0)));
  }
}

TEST(WireTupleTest, RoundTripsRecordPayloadViaCodec) {
  const PayloadCodec codec = RecordWireCodec();
  for (const WireCodec wire : kTupleCodings) {
    auto record = std::make_shared<Record>(MakeTestRecord(7, {1, 5, 9, 200000}));
    Tuple in = MakeTuple(std::shared_ptr<const void>(record), int64_t{3});
    const Tuple out = RoundTrip(wire, in, &codec);
    ASSERT_EQ(out.num_fields(), 2u);
    const auto decoded = out.Ptr<Record>(0);
    ASSERT_NE(decoded, nullptr);
    EXPECT_NE(decoded.get(), record.get());  // a real copy crossed the "wire"
    EXPECT_EQ(decoded->id, record->id);
    EXPECT_EQ(decoded->seq, record->seq);
    EXPECT_EQ(decoded->timestamp, record->timestamp);
    EXPECT_EQ(decoded->tokens, record->tokens);
    EXPECT_FALSE(decoded->tokens.borrowed());  // null arena => owning decode
    EXPECT_EQ(out.Int(1), 3);
  }
}

TEST(WireTupleTest, RoundTripsNullPayload) {
  for (const WireCodec wire : kTupleCodings) {
    Tuple in = MakeTuple(std::shared_ptr<const void>(), int64_t{1});
    const Tuple out = RoundTrip(wire, in, nullptr);  // null payload needs no codec
    ASSERT_EQ(out.num_fields(), 2u);
    EXPECT_EQ(std::get<std::shared_ptr<const void>>(out.field(0)), nullptr);
  }
}

TEST(WireRecordTest, DeltaRoundTripsEdgeTokenShapes) {
  const std::vector<std::vector<TokenId>> shapes = {
      {},                                // empty token array
      {0},                               // single minimal token
      {0xffffffffu},                     // single maximal token
      {0, 1, 2, 3, 4},                   // dense gaps (gap-1 == 0)
      {5, 100000, 0xfffffffeu, 0xffffffffu},  // huge gaps + ceiling
  };
  for (const auto& tokens : shapes) {
    const Record in = MakeTestRecord(9, tokens);
    std::string bytes;
    EncodeRecordDelta(in, &bytes);
    Record out;
    ASSERT_TRUE(DecodeRecordDelta(bytes.data(), bytes.size(), &out));
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.timestamp, in.timestamp);
    EXPECT_EQ(out.tokens, in.tokens);
  }
}

TEST(WireRecordTest, DecodeRejectsTruncatedAndMalformed) {
  std::string bytes;
  EncodeRecord(MakeTestRecord(1, {2, 3, 4}), &bytes);
  Record out;
  ASSERT_TRUE(DecodeRecord(bytes.data(), bytes.size(), &out));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeRecord(bytes.data(), cut, &out)) << "prefix " << cut;
  }
  // Token count inconsistent with the remaining bytes.
  std::string lying = bytes;
  lying[24] = static_cast<char>(lying[24] + 1);
  EXPECT_FALSE(DecodeRecord(lying.data(), lying.size(), &out));

  std::string delta;
  EncodeRecordDelta(MakeTestRecord(1, {2, 3, 4}), &delta);
  ASSERT_TRUE(DecodeRecordDelta(delta.data(), delta.size(), &out));
  for (size_t cut = 0; cut < delta.size(); ++cut) {
    EXPECT_FALSE(DecodeRecordDelta(delta.data(), cut, &out)) << "prefix " << cut;
  }
}

TEST(WireRecordTest, RejectsNonMonotoneTokens) {
  // Raw coding can express an unsorted array; the decoder must refuse it
  // (every downstream index assumes strict ascent).
  Record unsorted = MakeTestRecord(1, {5, 3, 9});
  std::string bytes;
  EncodeRecord(unsorted, &bytes);
  Record out;
  EXPECT_FALSE(DecodeRecord(bytes.data(), bytes.size(), &out));

  Record dup = MakeTestRecord(1, {5, 5});
  bytes.clear();
  EncodeRecord(dup, &bytes);
  EXPECT_FALSE(DecodeRecord(bytes.data(), bytes.size(), &out));
}

TEST(WireRecordTest, RejectsDeltaTokenOverflow) {
  // Delta coding is monotone by construction, so the only way to break
  // ascent is to run the reconstruction past UINT32_MAX. Hand-build a blob
  // whose second gap does exactly that.
  std::string bytes;
  BinaryWriter w(&bytes);
  w.WriteVarint(1);                        // id
  w.WriteVarint(2);                        // seq
  w.WriteVarintI64(-3);                    // timestamp
  w.WriteVarint(2);                        // token count
  w.WriteVarint(0xffffffffu);              // first token: at the ceiling
  w.WriteVarint(4);                        // next = 0xffffffff + 4 + 1: overflow
  Record out;
  EXPECT_FALSE(DecodeRecordDelta(bytes.data(), bytes.size(), &out));

  // A gap so large that prev + d + 1 wraps mod 2^64 back under the ceiling
  // would smuggle a duplicate token past the ascent check; the gap itself
  // must be range-checked first.
  std::string wrap;
  BinaryWriter w2(&wrap);
  w2.WriteVarint(1);                            // id
  w2.WriteVarint(2);                            // seq
  w2.WriteVarintI64(-3);                        // timestamp
  w2.WriteVarint(2);                            // token count
  w2.WriteVarint(5);                            // first token
  w2.WriteVarint(0xffffffffffffffffull);        // next = 5 + 2^64-1 + 1 = 5 again
  EXPECT_FALSE(DecodeRecordDelta(wrap.data(), wrap.size(), &out));
}

TEST(WireRecordTest, RejectsNonCanonicalVarint) {
  std::string bytes;
  EncodeRecordDelta(MakeTestRecord(1, {2, 3, 4}), &bytes);
  Record out;
  ASSERT_TRUE(DecodeRecordDelta(bytes.data(), bytes.size(), &out));
  // Re-encode the leading id varint (value 1, one byte) as the padded
  // two-byte form 0x81 0x00 — same value, non-minimal encoding. A canonical
  // decoder must reject it; accepting would give attackers encoding
  // freedom (two byte strings, one meaning) that breaks byte-identity
  // guarantees downstream.
  std::string padded;
  padded.push_back(static_cast<char>(0x81));
  padded.push_back(static_cast<char>(0x00));
  padded.append(bytes.data() + 1, bytes.size() - 1);
  EXPECT_FALSE(DecodeRecordDelta(padded.data(), padded.size(), &out));
}

std::vector<Envelope> SmallBatch() {
  std::vector<Envelope> envs;
  for (int i = 0; i < 3; ++i) {
    Envelope e;
    e.tuple = MakeTuple(int64_t{i}, std::string("abc"));
    e.source_task = 4;
    e.link_seq = static_cast<uint64_t>(i + 1);
    envs.push_back(std::move(e));
  }
  return envs;
}

std::string OneDataFrame(WireCodec wire, const PayloadCodec* codec) {
  std::string bytes;
  AppendDataFrame(wire, 4, 9, SmallBatch(), codec, &bytes);
  return bytes;
}

TEST(WireFrameTest, DataFrameRoundTripAllCodecs) {
  for (const WireCodec wire : kAllCodecs) {
    const std::string bytes = OneDataFrame(wire, nullptr);
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                         &frame, &consumed, &error),
              ParseStatus::kFrame)
        << WireCodecName(wire) << ": " << error;
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, FrameType::kData);
    EXPECT_EQ(frame.dst_task, 9);
    ASSERT_EQ(frame.envelopes.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(frame.envelopes[i].source_task, 4);
      EXPECT_EQ(frame.envelopes[i].link_seq, static_cast<uint64_t>(i + 1));
      EXPECT_EQ(frame.envelopes[i].tuple.Int(0), i);
      EXPECT_EQ(frame.envelopes[i].tuple.Str(1), "abc");
      EXPECT_FALSE(frame.envelopes[i].eos);
    }
  }
}

TEST(WireFrameTest, MixedCodecPeersInteroperate) {
  // The codec byte is per frame: a stream holding one frame of each codec
  // parses with no out-of-band configuration.
  std::string bytes;
  for (const WireCodec wire : kAllCodecs) {
    AppendDataFrame(wire, 4, 9, SmallBatch(), nullptr, &bytes);
  }
  size_t pos = 0;
  int frames = 0;
  while (pos < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes.data() + pos, bytes.size() - pos, nullptr,
                         kDefaultMaxFrameBytes, &frame, &consumed, &error),
              ParseStatus::kFrame)
        << error;
    ASSERT_EQ(frame.envelopes.size(), 3u);
    EXPECT_EQ(frame.envelopes[2].tuple.Int(0), 2);
    pos += consumed;
    ++frames;
  }
  EXPECT_EQ(frames, 3);
}

TEST(WireFrameTest, EnvelopeFramesSplitRunsAndEos) {
  std::vector<Envelope> envs;
  Envelope a;
  a.tuple = MakeTuple(int64_t{1});
  a.source_task = 2;
  a.link_seq = 1;
  envs.push_back(a);
  Envelope b = a;
  b.source_task = 3;  // source change forces a new kData frame
  envs.push_back(b);
  Envelope eos;
  eos.source_task = 3;
  eos.eos = true;
  eos.link_seq = 17;  // final link count rides the EOS marker
  envs.push_back(eos);
  std::string bytes;
  AppendEnvelopeFrames(WireCodec::kDelta, 5, envs, nullptr, &bytes);

  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes.data() + pos, bytes.size() - pos, nullptr,
                         kDefaultMaxFrameBytes, &frame, &consumed, &error),
              ParseStatus::kFrame)
        << error;
    pos += consumed;
    frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kData);
  EXPECT_EQ(frames[0].envelopes[0].source_task, 2);
  EXPECT_EQ(frames[1].type, FrameType::kData);
  EXPECT_EQ(frames[1].envelopes[0].source_task, 3);
  EXPECT_EQ(frames[2].type, FrameType::kEos);
  ASSERT_EQ(frames[2].envelopes.size(), 1u);
  EXPECT_TRUE(frames[2].envelopes[0].eos);
  EXPECT_EQ(frames[2].envelopes[0].link_seq, 17u);
}

TEST(WireFrameTest, ControlFramesRoundTrip) {
  std::string bytes;
  AppendHelloFrame(3, &bytes);
  AppendMetricsFrame(12, "blobby", &bytes);
  AppendDoneFrame(2, &bytes);
  AppendFailFrame(1, "task 5 exceeded restart budget", &bytes);

  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes.data() + pos, bytes.size() - pos, nullptr,
                         kDefaultMaxFrameBytes, &frame, &consumed, &error),
              ParseStatus::kFrame)
        << error;
    pos += consumed;
    frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].rank, 3);
  EXPECT_EQ(frames[1].type, FrameType::kMetrics);
  EXPECT_EQ(frames[1].task_id, 12);
  EXPECT_EQ(frames[1].blob, "blobby");
  EXPECT_EQ(frames[2].type, FrameType::kDone);
  EXPECT_EQ(frames[2].rank, 2);
  EXPECT_EQ(frames[3].type, FrameType::kFail);
  EXPECT_EQ(frames[3].rank, 1);
  EXPECT_EQ(frames[3].blob, "task 5 exceeded restart budget");
}

TEST(WireFrameTest, PrefixesAskForMoreBytes) {
  for (const WireCodec wire : kAllCodecs) {
    const std::string bytes = OneDataFrame(wire, nullptr);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      Frame frame;
      size_t consumed = 0;
      std::string error;
      EXPECT_EQ(ParseFrame(bytes.data(), cut, nullptr, kDefaultMaxFrameBytes, &frame,
                           &consumed, &error),
                ParseStatus::kNeedMore)
          << WireCodecName(wire) << " prefix " << cut;
    }
  }
}

TEST(WireFrameTest, RejectsOversizedLength) {
  std::string bytes = OneDataFrame(WireCodec::kDelta, nullptr);
  const uint32_t huge = kDefaultMaxFrameBytes + 1;
  std::memcpy(bytes.data(), &huge, 4);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                       &frame, &consumed, &error),
            ParseStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(WireFrameTest, RejectsUnknownType) {
  std::string bytes = OneDataFrame(WireCodec::kDelta, nullptr);
  bytes[4] = 0x7f;  // type byte
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                       &frame, &consumed, &error),
            ParseStatus::kError);
}

TEST(WireFrameTest, RejectsUnknownCodecByte) {
  std::string bytes = OneDataFrame(WireCodec::kDelta, nullptr);
  bytes[5] = 0x09;  // codec byte: only 0..2 are assigned
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                       &frame, &consumed, &error),
            ParseStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(WireFrameTest, RejectsBodyTruncatedInsideAnnouncedLength) {
  // Shrink the announced length so it cuts a tuple mid-field: the body is
  // "complete" per the length prefix but malformed inside.
  for (const WireCodec wire : kAllCodecs) {
    std::string bytes = OneDataFrame(wire, nullptr);
    uint32_t len;
    std::memcpy(&len, bytes.data(), 4);
    const uint32_t cut_len = len - 3;
    std::memcpy(bytes.data(), &cut_len, 4);
    bytes.resize(4 + cut_len);
    Frame frame;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                         &frame, &consumed, &error),
              ParseStatus::kError)
        << WireCodecName(wire);
  }
}

TEST(WireFrameTest, RejectsBadHelloMagic) {
  std::string bytes;
  AppendHelloFrame(0, &bytes);
  bytes[5] ^= 0x55;  // first magic byte
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                       &frame, &consumed, &error),
            ParseStatus::kError);
}

TEST(WireFrameTest, RejectsCodecFailureInPayload) {
  const PayloadCodec codec = RecordWireCodec();
  auto record = std::make_shared<Record>(MakeTestRecord(1, {2, 3}));
  Envelope e;
  e.tuple = MakeTuple(std::shared_ptr<const void>(record));
  e.source_task = 0;
  e.link_seq = 1;
  std::string bytes;
  AppendDataFrame(WireCodec::kRaw, 0, 1, {e}, &codec, &bytes);
  // Corrupt the encoded record's token count so only the codec fails (the
  // frame and tuple structure stay valid). The record blob is the frame's
  // final payload; its token count sits 24 bytes in (after
  // id/seq/timestamp).
  const size_t record_bytes = 28 + sizeof(TokenId) * record->tokens.size();
  const size_t count_offset = bytes.size() - record_bytes + 24;
  bytes[count_offset] ^= 0x01;
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), &codec, kDefaultMaxFrameBytes,
                       &frame, &consumed, &error),
            ParseStatus::kError);
}

// Builds a complete frame from a hand-rolled body (length prefix + type).
std::string RawFrame(FrameType type, const std::string& body) {
  std::string out;
  BinaryWriter w(&out);
  w.WriteU32(static_cast<uint32_t>(1 + body.size()));
  w.WriteU8(static_cast<uint8_t>(type));
  out.append(body);
  return out;
}

ParseStatus ParseOne(const std::string& bytes, std::string* error) {
  Frame frame;
  size_t consumed = 0;
  return ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                    &frame, &consumed, error);
}

TEST(WireFrameTest, RejectsDecompressionBomb) {
  // A kDeltaLz body announcing a decompressed size over the frame ceiling
  // must be rejected before any allocation happens.
  std::string body;
  BinaryWriter w(&body);
  w.WriteU8(static_cast<uint8_t>(WireCodec::kDeltaLz));
  w.WriteU32(0);   // source_task
  w.WriteU32(1);   // dst_task
  w.WriteU32(1);   // count
  w.WriteVarint(static_cast<uint64_t>(kDefaultMaxFrameBytes) + 1);  // raw_len lie
  w.WriteVarint(4);  // comp_len
  body.append("bomb", 4);
  std::string error;
  EXPECT_EQ(ParseOne(RawFrame(FrameType::kData, body), &error), ParseStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(WireFrameTest, RejectsLyingCompressedLengths) {
  // Start from a genuine delta section, compress it, then lie about raw_len
  // in both directions: the decompressor's exact-output contract must
  // reject both (a short lie truncates, a long lie under-fills).
  std::string real = OneDataFrame(WireCodec::kDelta, nullptr);
  const std::string section(real.data() + 4 + 1 + 1 + 4 + 4 + 4,
                            real.size() - (4 + 1 + 1 + 4 + 4 + 4));
  std::string compressed;
  BlockCompress(section.data(), section.size(), &compressed);
  ASSERT_NE(compressed.size(), section.size());  // force the compressed branch

  for (const int64_t lie : {int64_t{-1}, int64_t{1}, int64_t{100}}) {
    std::string body;
    BinaryWriter w(&body);
    w.WriteU8(static_cast<uint8_t>(WireCodec::kDeltaLz));
    w.WriteU32(4);
    w.WriteU32(9);
    w.WriteU32(3);
    w.WriteVarint(static_cast<uint64_t>(static_cast<int64_t>(section.size()) + lie));
    w.WriteVarint(compressed.size());
    body.append(compressed);
    std::string error;
    EXPECT_EQ(ParseOne(RawFrame(FrameType::kData, body), &error), ParseStatus::kError)
        << "raw_len lie " << lie;
  }

  // comp_len disagreeing with the actual byte count is also a lie.
  {
    std::string body;
    BinaryWriter w(&body);
    w.WriteU8(static_cast<uint8_t>(WireCodec::kDeltaLz));
    w.WriteU32(4);
    w.WriteU32(9);
    w.WriteU32(3);
    w.WriteVarint(section.size());
    w.WriteVarint(compressed.size() + 2);
    body.append(compressed);
    std::string error;
    EXPECT_EQ(ParseOne(RawFrame(FrameType::kData, body), &error), ParseStatus::kError);
  }
}

TEST(WireFrameTest, StoredSectionRoundTrips) {
  // comp_len == raw_len means the section is stored verbatim (the encoder
  // falls back when compression does not win); the parser must take the
  // stored branch, not attempt decompression.
  std::string real = OneDataFrame(WireCodec::kDelta, nullptr);
  const std::string section(real.data() + 4 + 1 + 1 + 4 + 4 + 4,
                            real.size() - (4 + 1 + 1 + 4 + 4 + 4));
  std::string body;
  BinaryWriter w(&body);
  w.WriteU8(static_cast<uint8_t>(WireCodec::kDeltaLz));
  w.WriteU32(4);
  w.WriteU32(9);
  w.WriteU32(3);
  w.WriteVarint(section.size());
  w.WriteVarint(section.size());
  body.append(section);
  const std::string bytes = RawFrame(FrameType::kData, body);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes,
                       &frame, &consumed, &error),
            ParseStatus::kFrame)
      << error;
  ASSERT_EQ(frame.envelopes.size(), 3u);
  EXPECT_EQ(frame.envelopes[2].tuple.Str(1), "abc");
}

TEST(WireFrameTest, BlockCompressorRoundTripsArbitraryBytes) {
  std::mt19937 rng(7);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{4}, size_t{100},
                         size_t{65536}, size_t{1u << 18}}) {
    // Three flavors: repetitive (compresses), random (stores), mixed.
    for (int flavor = 0; flavor < 3; ++flavor) {
      std::string in(n, '\0');
      for (size_t i = 0; i < n; ++i) {
        in[i] = flavor == 0   ? static_cast<char>(i % 7)
                : flavor == 1 ? static_cast<char>(rng())
                              : (i % 100 < 80 ? 'a' : static_cast<char>(rng()));
      }
      std::string comp;
      BlockCompress(in.data(), in.size(), &comp);
      std::string out(n, '\xff');
      ASSERT_TRUE(BlockDecompress(comp.data(), comp.size(), out.data(), n));
      EXPECT_EQ(out, in) << "n=" << n << " flavor=" << flavor;
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzz battery (PR 7 satellite): >= 5000 structured mutational iterations
// over seed frame streams in all three codecs. Mutation classes: random bit
// flips, truncations, length-field lies, varint padding injection
// (non-canonical encodings), 0xff runs (huge varints / non-monotone deltas),
// and chunk splices (confuses the LZ decompressor's sequence stream). Every
// outcome is acceptable except a crash, a sanitizer report, or a parser that
// stops making progress.
// ---------------------------------------------------------------------------

std::vector<std::string> FuzzSeeds(const PayloadCodec* codec) {
  std::vector<Envelope> envs;
  // Records spanning the interesting shapes: empty tokens, dense gaps, huge
  // gaps, ceiling tokens, plus scalar fields with NaN and embedded NUL.
  const std::vector<std::vector<TokenId>> shapes = {
      {}, {7}, {1, 2, 3, 4, 5, 6, 7, 8}, {10, 100000, 0xfffffffeu}};
  uint64_t link_seq = 1;
  for (size_t i = 0; i < shapes.size(); ++i) {
    Envelope e;
    auto record = std::make_shared<Record>(
        MakeTestRecord(40 + i, shapes[i]));
    e.tuple = MakeTuple(std::shared_ptr<const void>(record), int64_t{-5},
                        std::numeric_limits<double>::quiet_NaN(),
                        std::string("nul\0inside", 10));
    e.source_task = 1;
    e.link_seq = link_seq;
    link_seq += 1 + i;  // non-unit gaps exercise the zigzag link_seq coding
    envs.push_back(std::move(e));
  }
  std::vector<std::string> seeds;
  for (const WireCodec wire : kAllCodecs) {
    std::string s;
    AppendHelloFrame(1, &s);
    AppendDataFrame(wire, 1, 2, envs, codec, &s);
    AppendEosFrame(1, 2, 55, &s);
    AppendMetricsFrame(3, std::string(40, 'x'), &s);
    AppendFailFrame(1, "boom", &s);
    seeds.push_back(std::move(s));
  }
  return seeds;
}

void Mutate(std::mt19937& rng, std::string* bytes) {
  if (bytes->empty()) return;
  switch (rng() % 6) {
    case 0: {  // bit flips
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int f = 0; f < flips; ++f) {
        (*bytes)[rng() % bytes->size()] ^= static_cast<char>(1 + rng() % 255);
      }
      break;
    }
    case 1:  // truncation
      bytes->resize(rng() % (bytes->size() + 1));
      break;
    case 2: {  // length-field lie on the first frame
      uint32_t lie = rng();
      if (rng() % 2) lie %= (bytes->size() + 4);  // also small, plausible lies
      std::memcpy(bytes->data(), &lie, 4);
      break;
    }
    case 3: {  // varint-padding injection: continuation bytes shift structure
      const size_t pos = rng() % bytes->size();
      const int pad = 1 + static_cast<int>(rng() % 3);
      bytes->insert(pos, static_cast<size_t>(pad), static_cast<char>(0x80));
      break;
    }
    case 4: {  // 0xff run: maximal varints, wild deltas, lz token floods
      const size_t pos = rng() % bytes->size();
      const size_t run = 1 + rng() % 16;
      for (size_t i = pos; i < bytes->size() && i < pos + run; ++i) {
        (*bytes)[i] = static_cast<char>(0xff);
      }
      break;
    }
    default: {  // splice: copy one chunk over another
      const size_t len = 1 + rng() % 32;
      const size_t src = rng() % bytes->size();
      const size_t dst = rng() % bytes->size();
      const size_t n = std::min(len, bytes->size() - std::max(src, dst));
      if (n > 0) std::memmove(bytes->data() + dst, bytes->data() + src, n);
      break;
    }
  }
}

TEST(WireFuzzTest, StructuredMutationsNeverCrash) {
  const PayloadCodec codec = RecordWireCodec();
  const std::vector<std::string> seeds = FuzzSeeds(&codec);
  // Capacity 0: every arena is freed (not recycled) the moment its last
  // borrower drops, so ASan sees any use-after-free immediately.
  FrameArenaPool pool(0);
  std::mt19937 rng(20260808);
  constexpr int kIters = 6000;
  for (int iter = 0; iter < kIters; ++iter) {
    std::string mutated = seeds[static_cast<size_t>(iter) % seeds.size()];
    const int rounds = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < rounds; ++m) Mutate(rng, &mutated);

    // Alternate between the owning path and the zero-copy arena path; the
    // arena path must copy the bytes into arena storage first (that is the
    // ParseFrame contract the transports uphold).
    std::shared_ptr<FrameArena> arena;
    const char* data = mutated.data();
    if (iter % 2 == 1) {
      arena = pool.Acquire();
      arena->bytes() = mutated;
      data = arena->bytes().data();
    }

    // Parse as a stream until error or exhaustion; any outcome is fine as
    // long as nothing crashes and consumed always advances.
    size_t pos = 0;
    std::vector<Frame> parsed;
    while (pos < mutated.size()) {
      Frame frame;
      size_t consumed = 0;
      std::string error;
      const ParseStatus status = ParseFrame(data + pos, mutated.size() - pos, &codec,
                                            1u << 20, &frame, &consumed, &error);
      if (status != ParseStatus::kFrame) break;
      ASSERT_GT(consumed, 0u);
      pos += consumed;
      parsed.push_back(std::move(frame));
    }
    // Touch every surviving payload after the arena handle is dropped:
    // borrowed token views must keep the arena alive via their aliasing
    // owners, so this is exactly where ASan would catch a lifetime bug.
    arena.reset();
    for (const Frame& frame : parsed) {
      for (const Envelope& env : frame.envelopes) {
        for (size_t f = 0; f < env.tuple.num_fields(); ++f) {
          if (const auto* p =
                  std::get_if<std::shared_ptr<const void>>(&env.tuple.field(f))) {
            if (*p == nullptr) continue;
            const auto* r = static_cast<const Record*>(p->get());
            size_t sum = 0;
            for (const TokenId t : r->tokens) sum += t;
            ASSERT_GE(sum, 0u);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace dssj::net
