// Wire-format tests: tuple encoding round-trips every Value alternative,
// frame parsing is incremental, and malformed inputs (truncated bodies,
// oversized lengths, garbage) are rejected instead of crashing — the parser
// faces bytes from the network, not from this process.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/join_topology.h"
#include "gtest/gtest.h"
#include "net/wire.h"
#include "text/record.h"

namespace dssj::net {
namespace {

using stream::Envelope;
using stream::MakeTuple;
using stream::Tuple;

Record MakeTestRecord(uint64_t id, std::vector<TokenId> tokens) {
  Record r;
  r.id = id;
  r.seq = id + 100;
  r.timestamp = static_cast<int64_t>(id) * 7 - 3;
  r.tokens = std::move(tokens);
  return r;
}

Tuple RoundTrip(const Tuple& in, const PayloadCodec* codec) {
  std::string bytes;
  EncodeTuple(in, codec, &bytes);
  SafeBinaryReader r(bytes.data(), bytes.size());
  Tuple out;
  EXPECT_TRUE(DecodeTuple(r, codec, &out));
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(WireTupleTest, RoundTripsScalarsAndStrings) {
  Tuple in = MakeTuple(int64_t{-42}, 3.5, std::string("hello \0 wire", 12),
                       int64_t{INT64_MIN}, std::string());
  in.set_payload_bytes(99);
  const Tuple out = RoundTrip(in, nullptr);
  ASSERT_EQ(out.num_fields(), 5u);
  EXPECT_EQ(out.Int(0), -42);
  EXPECT_EQ(out.Double(1), 3.5);
  EXPECT_EQ(out.Str(2), std::string("hello \0 wire", 12));
  EXPECT_EQ(out.Int(3), INT64_MIN);
  EXPECT_EQ(out.Str(4), "");
  EXPECT_EQ(out.payload_bytes(), 99u);
}

TEST(WireTupleTest, RoundTripsDoubleBitPatterns) {
  for (const double d : {0.0, -0.0, 1e300, -1e-300,
                         std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::denorm_min()}) {
    const Tuple out = RoundTrip(MakeTuple(d), nullptr);
    uint64_t in_bits, out_bits;
    std::memcpy(&in_bits, &d, 8);
    const double got = out.Double(0);
    std::memcpy(&out_bits, &got, 8);
    EXPECT_EQ(in_bits, out_bits);
  }
  // NaN must survive bit-exactly too (== comparison would lie).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Tuple out = RoundTrip(MakeTuple(nan), nullptr);
  EXPECT_TRUE(std::isnan(out.Double(0)));
}

TEST(WireTupleTest, RoundTripsRecordPayloadViaCodec) {
  const PayloadCodec codec = RecordWireCodec();
  auto record = std::make_shared<Record>(MakeTestRecord(7, {1, 5, 9, 200000}));
  Tuple in = MakeTuple(std::shared_ptr<const void>(record), int64_t{3});
  const Tuple out = RoundTrip(in, &codec);
  ASSERT_EQ(out.num_fields(), 2u);
  const auto decoded = out.Ptr<Record>(0);
  ASSERT_NE(decoded, nullptr);
  EXPECT_NE(decoded.get(), record.get());  // a real copy crossed the "wire"
  EXPECT_EQ(decoded->id, record->id);
  EXPECT_EQ(decoded->seq, record->seq);
  EXPECT_EQ(decoded->timestamp, record->timestamp);
  EXPECT_EQ(decoded->tokens, record->tokens);
  EXPECT_EQ(out.Int(1), 3);
}

TEST(WireTupleTest, RoundTripsNullPayload) {
  Tuple in = MakeTuple(std::shared_ptr<const void>(), int64_t{1});
  const Tuple out = RoundTrip(in, nullptr);  // null payload needs no codec
  ASSERT_EQ(out.num_fields(), 2u);
  EXPECT_EQ(std::get<std::shared_ptr<const void>>(out.field(0)), nullptr);
}

TEST(WireRecordTest, DecodeRejectsTruncatedAndMalformed) {
  std::string bytes;
  EncodeRecord(MakeTestRecord(1, {2, 3, 4}), &bytes);
  Record out;
  ASSERT_TRUE(DecodeRecord(bytes.data(), bytes.size(), &out));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeRecord(bytes.data(), cut, &out)) << "prefix " << cut;
  }
  // Token count inconsistent with the remaining bytes.
  std::string lying = bytes;
  lying[24] = static_cast<char>(lying[24] + 1);
  EXPECT_FALSE(DecodeRecord(lying.data(), lying.size(), &out));
}

std::string OneDataFrame(const PayloadCodec* codec) {
  std::vector<Envelope> envs;
  for (int i = 0; i < 3; ++i) {
    Envelope e;
    e.tuple = MakeTuple(int64_t{i}, std::string("abc"));
    e.source_task = 4;
    e.link_seq = static_cast<uint64_t>(i + 1);
    envs.push_back(std::move(e));
  }
  std::string bytes;
  AppendDataFrame(4, 9, envs, codec, &bytes);
  return bytes;
}

TEST(WireFrameTest, DataFrameRoundTrip) {
  const std::string bytes = OneDataFrame(nullptr);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes, &frame,
                       &consumed, &error),
            ParseStatus::kFrame)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.dst_task, 9);
  ASSERT_EQ(frame.envelopes.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(frame.envelopes[i].source_task, 4);
    EXPECT_EQ(frame.envelopes[i].link_seq, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(frame.envelopes[i].tuple.Int(0), i);
    EXPECT_EQ(frame.envelopes[i].tuple.Str(1), "abc");
    EXPECT_FALSE(frame.envelopes[i].eos);
  }
}

TEST(WireFrameTest, EnvelopeFramesSplitRunsAndEos) {
  std::vector<Envelope> envs;
  Envelope a;
  a.tuple = MakeTuple(int64_t{1});
  a.source_task = 2;
  a.link_seq = 1;
  envs.push_back(a);
  Envelope b = a;
  b.source_task = 3;  // source change forces a new kData frame
  envs.push_back(b);
  Envelope eos;
  eos.source_task = 3;
  eos.eos = true;
  eos.link_seq = 17;  // final link count rides the EOS marker
  envs.push_back(eos);
  std::string bytes;
  AppendEnvelopeFrames(5, envs, nullptr, &bytes);

  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes.data() + pos, bytes.size() - pos, nullptr,
                         kDefaultMaxFrameBytes, &frame, &consumed, &error),
              ParseStatus::kFrame)
        << error;
    pos += consumed;
    frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kData);
  EXPECT_EQ(frames[0].envelopes[0].source_task, 2);
  EXPECT_EQ(frames[1].type, FrameType::kData);
  EXPECT_EQ(frames[1].envelopes[0].source_task, 3);
  EXPECT_EQ(frames[2].type, FrameType::kEos);
  ASSERT_EQ(frames[2].envelopes.size(), 1u);
  EXPECT_TRUE(frames[2].envelopes[0].eos);
  EXPECT_EQ(frames[2].envelopes[0].link_seq, 17u);
}

TEST(WireFrameTest, ControlFramesRoundTrip) {
  std::string bytes;
  AppendHelloFrame(3, &bytes);
  AppendMetricsFrame(12, "blobby", &bytes);
  AppendDoneFrame(2, &bytes);
  AppendFailFrame(1, "task 5 exceeded restart budget", &bytes);

  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes.data() + pos, bytes.size() - pos, nullptr,
                         kDefaultMaxFrameBytes, &frame, &consumed, &error),
              ParseStatus::kFrame)
        << error;
    pos += consumed;
    frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].rank, 3);
  EXPECT_EQ(frames[1].type, FrameType::kMetrics);
  EXPECT_EQ(frames[1].task_id, 12);
  EXPECT_EQ(frames[1].blob, "blobby");
  EXPECT_EQ(frames[2].type, FrameType::kDone);
  EXPECT_EQ(frames[2].rank, 2);
  EXPECT_EQ(frames[3].type, FrameType::kFail);
  EXPECT_EQ(frames[3].rank, 1);
  EXPECT_EQ(frames[3].blob, "task 5 exceeded restart budget");
}

TEST(WireFrameTest, PrefixesAskForMoreBytes) {
  const std::string bytes = OneDataFrame(nullptr);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseFrame(bytes.data(), cut, nullptr, kDefaultMaxFrameBytes, &frame,
                         &consumed, &error),
              ParseStatus::kNeedMore)
        << "prefix " << cut;
  }
}

TEST(WireFrameTest, RejectsOversizedLength) {
  std::string bytes = OneDataFrame(nullptr);
  const uint32_t huge = kDefaultMaxFrameBytes + 1;
  std::memcpy(bytes.data(), &huge, 4);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes, &frame,
                       &consumed, &error),
            ParseStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(WireFrameTest, RejectsUnknownType) {
  std::string bytes = OneDataFrame(nullptr);
  bytes[4] = 0x7f;  // type byte
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes, &frame,
                       &consumed, &error),
            ParseStatus::kError);
}

TEST(WireFrameTest, RejectsBodyTruncatedInsideAnnouncedLength) {
  // Shrink the announced length so it cuts a tuple mid-field: the body is
  // "complete" per the length prefix but malformed inside.
  std::string bytes = OneDataFrame(nullptr);
  uint32_t len;
  std::memcpy(&len, bytes.data(), 4);
  const uint32_t cut_len = len - 3;
  std::memcpy(bytes.data(), &cut_len, 4);
  bytes.resize(4 + cut_len);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes, &frame,
                       &consumed, &error),
            ParseStatus::kError);
}

TEST(WireFrameTest, RejectsBadHelloMagic) {
  std::string bytes;
  AppendHelloFrame(0, &bytes);
  bytes[5] ^= 0x55;  // first magic byte
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), nullptr, kDefaultMaxFrameBytes, &frame,
                       &consumed, &error),
            ParseStatus::kError);
}

TEST(WireFrameTest, RejectsCodecFailureInPayload) {
  const PayloadCodec codec = RecordWireCodec();
  auto record = std::make_shared<Record>(MakeTestRecord(1, {2, 3}));
  Envelope e;
  e.tuple = MakeTuple(std::shared_ptr<const void>(record));
  e.source_task = 0;
  e.link_seq = 1;
  std::string bytes;
  AppendDataFrame(0, 1, {e}, &codec, &bytes);
  // Corrupt the encoded record's token count so only the codec fails (the
  // frame and tuple structure stay valid). The record blob is the frame's
  // final payload; its token count sits 24 bytes in (after
  // id/seq/timestamp).
  const size_t record_bytes = 28 + sizeof(TokenId) * record->tokens.size();
  const size_t count_offset = bytes.size() - record_bytes + 24;
  bytes[count_offset] ^= 0x01;
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes.data(), bytes.size(), &codec, kDefaultMaxFrameBytes, &frame,
                       &consumed, &error),
            ParseStatus::kError);
}

TEST(WireFrameTest, FuzzedMutationsNeverCrash) {
  const PayloadCodec codec = RecordWireCodec();
  auto record = std::make_shared<Record>(MakeTestRecord(2, {4, 5, 6}));
  Envelope payload_env;
  payload_env.tuple = MakeTuple(std::shared_ptr<const void>(record), int64_t{8});
  payload_env.source_task = 1;
  payload_env.link_seq = 2;
  std::string seed_frames;
  AppendHelloFrame(1, &seed_frames);
  AppendDataFrame(1, 2, {payload_env}, &codec, &seed_frames);
  AppendEosFrame(1, 2, 55, &seed_frames);
  AppendMetricsFrame(3, std::string(40, 'x'), &seed_frames);

  std::mt19937 rng(20260806);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = seed_frames;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    if (rng() % 4 == 0) mutated.resize(rng() % (mutated.size() + 1));
    // Parse as a stream until error or exhaustion; any outcome is fine as
    // long as nothing crashes and consumed always advances.
    size_t pos = 0;
    while (pos < mutated.size()) {
      Frame frame;
      size_t consumed = 0;
      std::string error;
      const ParseStatus status =
          ParseFrame(mutated.data() + pos, mutated.size() - pos, &codec,
                     1u << 20, &frame, &consumed, &error);
      if (status != ParseStatus::kFrame) break;
      ASSERT_GT(consumed, 0u);
      pos += consumed;
    }
  }
}

}  // namespace
}  // namespace dssj::net
