// The ring queues are a drop-in replacement for the mutex BoundedQueue:
// whatever configuration a topology runs — dataset shape, batch size, fault
// script, shed policy — switching QueueImpl must not change a single byte of
// the result set. Every test here runs the identical workload under
// --queue=mutex and --queue=ring and compares the canonicalized pairs.
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_topology.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> PresetStream(DatasetPreset preset, uint64_t seed, size_t n) {
  WorkloadOptions options = PresetOptions(preset);
  options.seed = seed;
  return WorkloadGenerator(options).Generate(n);
}

DistributedJoinResult RunWith(stream::QueueImpl impl, DistributedJoinOptions options,
                              const std::vector<RecordPtr>& stream) {
  options.queue_impl = impl;
  DistributedJoinResult result = RunDistributedJoin(stream, options);
  EXPECT_TRUE(result.ok) << result.failure_message;
  return result;
}

/// The core assertion: mutex and ring runs of `options` produce byte-identical
/// result sets (and agree on the result count the bolts published).
void ExpectQueueEquivalence(const DistributedJoinOptions& options,
                            const std::vector<RecordPtr>& stream, const std::string& what) {
  const DistributedJoinResult mutex_run = RunWith(stream::QueueImpl::kMutex, options, stream);
  const DistributedJoinResult ring_run = RunWith(stream::QueueImpl::kRing, options, stream);
  EXPECT_EQ(mutex_run.result_count, ring_run.result_count) << what;
  const auto expect = Canonical(mutex_run.pairs);
  const auto got = Canonical(ring_run.pairs);
  ASSERT_EQ(got.size(), expect.size()) << what;
  EXPECT_EQ(got, expect) << what << ": ring diverged from mutex";
  EXPECT_GT(expect.size(), 0u) << what << ": vacuous test stream";
}

// (dataset preset, batch size)
using EquivParam = std::tuple<DatasetPreset, size_t>;

class QueueEquivalenceTest : public ::testing::TestWithParam<EquivParam> {
 protected:
  QueueEquivalenceTest() {
    const auto [preset, batch_size] = GetParam();
    stream_ = PresetStream(preset, 2024, 700);
    options_.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
    options_.strategy = DistributionStrategy::kLengthBased;
    options_.num_joiners = 3;
    options_.collect_results = true;
    options_.batch_size = batch_size;
    options_.length_partition = PlanLengthPartition(stream_, options_.sim, options_.num_joiners,
                                                    PartitionMethod::kLoadAwareGreedy);
    what_ = std::string(DatasetPresetName(preset)) + "/batch=" + std::to_string(batch_size);
  }

  std::vector<RecordPtr> stream_;
  DistributedJoinOptions options_;
  std::string what_;
};

TEST_P(QueueEquivalenceTest, CleanRunIsByteIdentical) {
  ExpectQueueEquivalence(options_, stream_, what_);
}

TEST_P(QueueEquivalenceTest, FaultScriptRunIsByteIdentical) {
  // A joiner kill plus a dropped and a duplicated link envelope: recovery is
  // exactly-once under either queue, so the runs still agree byte-for-byte.
  options_.supervise = true;
  options_.fault_script =
      "kill:joiner:1@150; drop:dispatcher:0->joiner:0@40; dup:dispatcher:0->joiner:2@60";
  options_.supervision.checkpoint_interval = 100;
  options_.supervision.initial_backoff_micros = 50;
  options_.supervision.max_backoff_micros = 1000;
  ExpectQueueEquivalence(options_, stream_, what_ + "/faults");
}

TEST_P(QueueEquivalenceTest, ArmedShedPolicyRunIsByteIdentical) {
  // Shedding armed but never engaged (ample queue, unhurried stream): both
  // impls must report zero sheds and the full result set. (When a flood does
  // engage the policy, which tuples get shed is timing-dependent by design —
  // the loss-accounting guarantees are covered by overload_test under both
  // impls' dynamics.)
  options_.shed_policy = stream::ShedPolicy::kProbe;
  options_.shed_watermark = 0.9;
  options_.queue_capacity = 4096;
  const DistributedJoinResult mutex_run = RunWith(stream::QueueImpl::kMutex, options_, stream_);
  const DistributedJoinResult ring_run = RunWith(stream::QueueImpl::kRing, options_, stream_);
  EXPECT_EQ(mutex_run.shed_probes, 0u) << what_;
  EXPECT_EQ(ring_run.shed_probes, 0u) << what_;
  EXPECT_EQ(Canonical(ring_run.pairs), Canonical(mutex_run.pairs)) << what_;
  EXPECT_GT(ring_run.pairs.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAndBatchSizes, QueueEquivalenceTest,
    ::testing::Values(EquivParam{DatasetPreset::kTweet, 1},
                      EquivParam{DatasetPreset::kTweet, 16},
                      EquivParam{DatasetPreset::kTweet, 128},
                      EquivParam{DatasetPreset::kDblp, 1},
                      EquivParam{DatasetPreset::kDblp, 16},
                      EquivParam{DatasetPreset::kDblp, 128}),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      return std::string(DatasetPresetName(std::get<0>(info.param))) + "Batch" +
             std::to_string(std::get<1>(info.param));
    });

// Fan-in through the MPMC ring: broadcast routing with several joiners makes
// every joiner queue a multi-producer link when dispatcher parallelism > 1;
// the sink is always a fan-in consumer. Exercised at the batch-size extremes.
TEST(QueueEquivalenceFanInTest, BroadcastBundleJoinIsByteIdentical) {
  const auto stream = PresetStream(DatasetPreset::kTweet, 7, 500);
  for (size_t batch_size : {1u, 128u}) {
    DistributedJoinOptions options;
    options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
    options.strategy = DistributionStrategy::kBroadcast;
    options.local = LocalAlgorithm::kBundle;
    options.num_joiners = 4;
    options.collect_results = true;
    options.batch_size = batch_size;
    ExpectQueueEquivalence(options, stream, "broadcast/batch=" + std::to_string(batch_size));
  }
}

}  // namespace
}  // namespace dssj
