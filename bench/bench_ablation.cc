// Experiment E10 — design-choice ablations called out in DESIGN.md:
//   (a) dispatcher parallelism: with d > 1 the exactly-once rule degrades
//       to at-most-once (cross-dispatcher races); measure recall.
//   (b) planner sample size: how much history the load-aware partitioner
//       needs before the measured imbalance converges.
//   (c) positional filter on/off inside the record joiner.

#include <algorithm>
#include <set>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/brute_force_joiner.h"
#include "core/record_joiner.h"

namespace dssj::bench {
namespace {

// (a) dispatcher parallelism → result recall + throughput.
void BM_DispatcherParallelism(benchmark::State& state) {
  const int dispatchers = static_cast<int>(state.range(0));
  const auto& stream = CachedDupStream(0.4, 20000);
  DistributedJoinOptions options = BaseJoinOptions(800, 4);
  options.strategy = DistributionStrategy::kLengthBased;
  options.num_dispatchers = dispatchers;
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 4, PartitionMethod::kLoadAwareGreedy);
  options.collect_results = false;
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  // Ground truth for recall.
  static uint64_t truth = [&] {
    BruteForceJoiner reference(options.sim, options.window);
    return SingleNodeJoin(stream, reference).size();
  }();
  ReportJoinResult(state, result);
  state.counters["recall"] =
      truth > 0 ? static_cast<double>(result.result_count) / static_cast<double>(truth) : 1.0;
}

BENCHMARK(BM_DispatcherParallelism)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

// (b) planner sample size → measured busy imbalance.
void BM_PlannerSampleSize(benchmark::State& state) {
  const size_t sample_size = static_cast<size_t>(state.range(0));
  const auto& stream = CachedStream(DatasetPreset::kEnron, 30000);
  DistributedJoinOptions options = BaseJoinOptions(800, 8);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(15000);
  const std::vector<RecordPtr> sample(
      stream.begin(), stream.begin() + std::min(sample_size, stream.size()));
  options.length_partition =
      PlanLengthPartition(sample, options.sim, 8, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : result.joiner_busy_micros) {
    sum += b;
    worst = std::max(worst, b);
  }
  state.counters["measured_imbalance"] =
      sum > 0 ? static_cast<double>(worst) * 8 / static_cast<double>(sum) : 0.0;
  state.counters["rec_per_s_scaled"] = result.scaled_throughput_rps;
}

BENCHMARK(BM_PlannerSampleSize)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(30000)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

// (c) positional filter ablation in the local joiner.
void RunPositional(benchmark::State& state, bool positional) {
  const auto& stream = CachedDupStream(0.4, 30000);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  RecordJoinerOptions ro;
  ro.positional_filter = positional;
  uint64_t sink = 0;
  std::unique_ptr<RecordJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<RecordJoiner>(sim, WindowSpec::ByCount(20000), ro);
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.counters["candidates"] = static_cast<double>(joiner->stats().candidates);
  state.counters["position_filtered"] =
      static_cast<double>(joiner->stats().position_filtered);
  state.counters["merge_steps"] = static_cast<double>(joiner->stats().verify.merge_steps);
}

void BM_PositionalFilterOn(benchmark::State& state) { RunPositional(state, true); }
void BM_PositionalFilterOff(benchmark::State& state) { RunPositional(state, false); }

BENCHMARK(BM_PositionalFilterOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PositionalFilterOff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
