// Experiment E6 — bundle-based vs record-at-a-time local join across
// near-duplicate densities. Bundling groups similar stored records, so
// posting lists shrink and probes touch fewer entries; the advantage grows
// with duplicate density (the paper's motivating scenario: retweets,
// re-posted news).
//
// Usage: bench_local_join [--records=N] [google-benchmark flags]
//   --records=N   stream length per benchmark (default 30000; the CI smoke
//                 run uses 20000 to bound wall time).
//
// The *Scalar variants pin the pre-optimization verification kernel
// (VerifyKernel::kScalar) so the block/SIMD kernel's effect is measurable
// in one binary.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/brute_force_joiner.h"
#include "core/bundle_joiner.h"
#include "core/record_joiner.h"
#include "core/verify.h"

namespace dssj::bench {
namespace {

size_t g_records = 30000;

void RunLocal(benchmark::State& state, LocalAlgorithm algorithm, VerifyKernel kernel) {
  const double dup_fraction = static_cast<double>(state.range(0)) / 100.0;
  const size_t records = g_records;
  const auto& stream = CachedDupStream(dup_fraction, records);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const WindowSpec window = WindowSpec::ByCount(20000);
  SetVerifyKernel(kernel);
  uint64_t sink = 0;
  std::unique_ptr<LocalJoiner> joiner;
  for (auto _ : state) {
    switch (algorithm) {
      case LocalAlgorithm::kRecord:
        joiner = std::make_unique<RecordJoiner>(sim, window);
        break;
      case LocalAlgorithm::kBundle:
        joiner = std::make_unique<BundleJoiner>(sim, window);
        break;
      case LocalAlgorithm::kBruteForce:
        joiner = std::make_unique<BruteForceJoiner>(sim, window);
        break;
    }
    for (const RecordPtr& r : stream) {
      joiner->Process(r, /*store=*/true, /*probe=*/true,
                      [&sink](const ResultPair&) { ++sink; });
    }
  }
  SetVerifyKernel(VerifyKernel::kBlock);
  benchmark::DoNotOptimize(sink);
  const JoinerStats& s = joiner->stats();
  state.SetItemsProcessed(static_cast<int64_t>(records) * state.iterations());
  state.counters["results"] = static_cast<double>(s.results);
  state.counters["postings_scanned"] = static_cast<double>(s.postings_scanned);
  state.counters["candidates"] = static_cast<double>(s.candidates);
  state.counters["merge_steps"] = static_cast<double>(s.verify.merge_steps);
  state.counters["rec_per_s"] = benchmark::Counter(
      static_cast<double>(records) * state.iterations(), benchmark::Counter::kIsRate);
}

void BM_RecordJoiner(benchmark::State& state) {
  RunLocal(state, LocalAlgorithm::kRecord, VerifyKernel::kBlock);
}
void BM_BundleJoiner(benchmark::State& state) {
  RunLocal(state, LocalAlgorithm::kBundle, VerifyKernel::kBlock);
}
void BM_RecordJoinerScalar(benchmark::State& state) {
  RunLocal(state, LocalAlgorithm::kRecord, VerifyKernel::kScalar);
}
void BM_BundleJoinerScalar(benchmark::State& state) {
  RunLocal(state, LocalAlgorithm::kBundle, VerifyKernel::kScalar);
}

// Duplicate density sweep: 0%, 20%, 40%, 60%, 80%.
BENCHMARK(BM_RecordJoiner)->Arg(0)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BundleJoiner)->Arg(0)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecordJoinerScalar)->Arg(40)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BundleJoinerScalar)->Arg(40)->Unit(benchmark::kMillisecond);

// Brute force as a scale anchor on a smaller prefix of the stream.
void BM_BruteForceAnchor(benchmark::State& state) {
  const auto& full = CachedDupStream(0.4, g_records);
  const size_t anchor = std::min<size_t>(4000, full.size());
  const std::vector<RecordPtr> stream(full.begin(),
                                      full.begin() + static_cast<ptrdiff_t>(anchor));
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  uint64_t sink = 0;
  for (auto _ : state) {
    BruteForceJoiner joiner(sim, WindowSpec::ByCount(20000));
    for (const RecordPtr& r : stream) {
      joiner.Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(anchor) * state.iterations());
}

BENCHMARK(BM_BruteForceAnchor)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dssj::bench

int main(int argc, char** argv) {
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--records=", 10) == 0) {
      const long n = std::atol(argv[i] + 10);
      if (n < 1) {
        std::fprintf(stderr, "--records must be >= 1\n");
        return 1;
      }
      dssj::bench::g_records = static_cast<size_t>(n);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
