// Experiment E6 — bundle-based vs record-at-a-time local join across
// near-duplicate densities. Bundling groups similar stored records, so
// posting lists shrink and probes touch fewer entries; the advantage grows
// with duplicate density (the paper's motivating scenario: retweets,
// re-posted news).

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/brute_force_joiner.h"
#include "core/bundle_joiner.h"
#include "core/record_joiner.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 30000;

void RunLocal(benchmark::State& state, LocalAlgorithm algorithm) {
  const double dup_fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto& stream = CachedDupStream(dup_fraction, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const WindowSpec window = WindowSpec::ByCount(20000);
  uint64_t sink = 0;
  std::unique_ptr<LocalJoiner> joiner;
  for (auto _ : state) {
    switch (algorithm) {
      case LocalAlgorithm::kRecord:
        joiner = std::make_unique<RecordJoiner>(sim, window);
        break;
      case LocalAlgorithm::kBundle:
        joiner = std::make_unique<BundleJoiner>(sim, window);
        break;
      case LocalAlgorithm::kBruteForce:
        joiner = std::make_unique<BruteForceJoiner>(sim, window);
        break;
    }
    for (const RecordPtr& r : stream) {
      joiner->Process(r, /*store=*/true, /*probe=*/true,
                      [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  const JoinerStats& s = joiner->stats();
  state.SetItemsProcessed(static_cast<int64_t>(kRecords) * state.iterations());
  state.counters["results"] = static_cast<double>(s.results);
  state.counters["postings_scanned"] = static_cast<double>(s.postings_scanned);
  state.counters["candidates"] = static_cast<double>(s.candidates);
  state.counters["merge_steps"] = static_cast<double>(s.verify.merge_steps);
  state.counters["rec_per_s"] = benchmark::Counter(
      static_cast<double>(kRecords) * state.iterations(), benchmark::Counter::kIsRate);
}

void BM_RecordJoiner(benchmark::State& state) { RunLocal(state, LocalAlgorithm::kRecord); }
void BM_BundleJoiner(benchmark::State& state) { RunLocal(state, LocalAlgorithm::kBundle); }

// Duplicate density sweep: 0%, 20%, 40%, 60%, 80%.
BENCHMARK(BM_RecordJoiner)->Arg(0)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BundleJoiner)->Arg(0)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);

// Brute force as a scale anchor on a smaller prefix of the stream.
void BM_BruteForceAnchor(benchmark::State& state) {
  const auto& full = CachedDupStream(0.4, kRecords);
  const std::vector<RecordPtr> stream(full.begin(), full.begin() + 4000);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  uint64_t sink = 0;
  for (auto _ : state) {
    BruteForceJoiner joiner(sim, WindowSpec::ByCount(20000));
    for (const RecordPtr& r : stream) {
      joiner.Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(4000 * state.iterations());
}

BENCHMARK(BM_BruteForceAnchor)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
