// Experiment E8 — effect of the sliding-window size. Larger windows keep
// more stored records, so probes scan more postings and memory grows; the
// paper's figure shows throughput degrading gracefully with window size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/record_joiner.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 60000;

void BM_CountWindowSweep(benchmark::State& state) {
  const size_t window_size = static_cast<size_t>(state.range(0));
  const auto& stream = CachedDupStream(0.3, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  uint64_t sink = 0;
  std::unique_ptr<RecordJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<RecordJoiner>(sim, WindowSpec::ByCount(window_size));
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(kRecords) * state.iterations());
  state.counters["rec_per_s"] = benchmark::Counter(
      static_cast<double>(kRecords) * state.iterations(), benchmark::Counter::kIsRate);
  state.counters["results"] = static_cast<double>(joiner->stats().results);
  state.counters["postings_scanned"] =
      static_cast<double>(joiner->stats().postings_scanned);
  state.counters["evictions"] = static_cast<double>(joiner->stats().evictions);
  state.counters["memory_MB"] = static_cast<double>(joiner->MemoryBytes()) / 1e6;
}

BENCHMARK(BM_CountWindowSweep)
    ->Arg(2500)->Arg(5000)->Arg(10000)->Arg(20000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);

// Time-based windows with the same semantics, swept by span (in stream
// steps of 1ms).
void BM_TimeWindowSweep(benchmark::State& state) {
  const int64_t span_us = state.range(0) * 1000;
  const auto& stream = CachedDupStream(0.3, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  uint64_t sink = 0;
  std::unique_ptr<RecordJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<RecordJoiner>(sim, WindowSpec::ByTime(span_us));
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.counters["results"] = static_cast<double>(joiner->stats().results);
  state.counters["stored_at_end"] = static_cast<double>(joiner->StoredCount());
  state.counters["memory_MB"] = static_cast<double>(joiner->MemoryBytes()) / 1e6;
}

BENCHMARK(BM_TimeWindowSweep)
    ->Arg(2500)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond);

// Distributed variant: window size under the full length-based topology.
void BM_DistributedWindowSweep(benchmark::State& state) {
  const size_t window_size = static_cast<size_t>(state.range(0));
  const auto& stream = CachedDupStream(0.3, 30000);
  DistributedJoinOptions options = BaseJoinOptions(800, 8);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(window_size);
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 8, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  ReportJoinResult(state, result);
}

BENCHMARK(BM_DistributedWindowSweep)
    ->Arg(2500)->Arg(10000)->Arg(40000)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
