#ifndef DSSJ_BENCH_BENCH_UTIL_H_
#define DSSJ_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/join_topology.h"
#include "text/record.h"
#include "workload/generator.h"

namespace dssj::bench {

/// Returns (and memoizes) a deterministic synthetic stream for `preset`.
/// Benches share streams so every configuration sees identical input.
inline const std::vector<RecordPtr>& CachedStream(DatasetPreset preset, size_t n,
                                                  uint64_t seed = 42) {
  static auto* cache =
      new std::map<std::tuple<int, size_t, uint64_t>, std::vector<RecordPtr>>();
  const auto key = std::make_tuple(static_cast<int>(preset), n, seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    WorkloadOptions options = PresetOptions(preset);
    options.seed = seed;
    it = cache->emplace(key, WorkloadGenerator(options).Generate(n)).first;
  }
  return it->second;
}

/// A stream with an explicit near-duplicate density (bundle experiments).
inline const std::vector<RecordPtr>& CachedDupStream(double dup_fraction, size_t n,
                                                     uint64_t seed = 42) {
  static auto* cache =
      new std::map<std::tuple<int, size_t, uint64_t>, std::vector<RecordPtr>>();
  const auto key = std::make_tuple(static_cast<int>(dup_fraction * 1000), n, seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    WorkloadOptions options = PresetOptions(DatasetPreset::kTweet);
    options.seed = seed;
    options.duplicate_fraction = dup_fraction;
    options.mutation_rate = 0.06;
    options.dup_locality = 20000;
    it = cache->emplace(key, WorkloadGenerator(options).Generate(n)).first;
  }
  return it->second;
}

/// Baseline distributed-join options shared by the macro benches.
///
/// remote_byte_cost_ns models the serialization/deserialization CPU a
/// Storm-like system pays for every byte crossing workers (~2 ns/byte ≈
/// Kryo at 500 MB/s per core, both endpoints charged). Without it,
/// in-process message passing is free and the broadcast baseline looks far
/// better than it ever is on a real cluster.
inline DistributedJoinOptions BaseJoinOptions(int64_t threshold_permille, int joiners) {
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, threshold_permille);
  options.num_joiners = joiners;
  options.collect_results = false;
  options.queue_capacity = 8192;
  options.remote_byte_cost_ns = 2.0;
  return options;
}

/// Publishes the result metrics every macro bench reports.
inline void ReportJoinResult(benchmark::State& state, const DistributedJoinResult& r) {
  state.counters["rec_per_s_wall"] = r.throughput_rps;
  state.counters["rec_per_s_scaled"] = r.scaled_throughput_rps;
  state.counters["results"] = static_cast<double>(r.result_count);
  state.counters["dispatch_msgs"] = static_cast<double>(r.dispatch_messages);
  state.counters["dispatch_MB"] = static_cast<double>(r.dispatch_bytes) / 1e6;
  state.counters["remote_MB"] = static_cast<double>(r.remote_bytes) / 1e6;
  state.counters["replication"] = r.replication_factor;
  state.counters["lat_p50_us"] = static_cast<double>(r.latency.p50_us);
  state.counters["lat_p99_us"] = static_cast<double>(r.latency.p99_us);
}

}  // namespace dssj::bench

#endif  // DSSJ_BENCH_BENCH_UTIL_H_
