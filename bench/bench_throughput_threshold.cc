// Experiment E2 — throughput vs similarity threshold, per distribution
// strategy, on two workload shapes (the paper's headline figure:
// length-based distribution beats prefix-based and broadcast by up to an
// order of magnitude).
//
//  * TWEET: short records — dispatch overhead matters, prefixes are short.
//  * ENRON: long records — prefix-based replicates to almost every worker
//    (long prefixes) and length-based dominates.
//
// rec_per_s_scaled models a cluster (records / busiest-task time); on this
// single-core host wall clock merely sums all tasks (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dssj::bench {
namespace {

constexpr int kJoiners = 8;

size_t RecordsFor(DatasetPreset preset) {
  return preset == DatasetPreset::kEnron ? 20000 : 40000;
}

void RunStrategy(benchmark::State& state, DistributionStrategy strategy,
                 DatasetPreset preset) {
  const int64_t threshold = state.range(0);
  const size_t n = RecordsFor(preset);
  const auto& stream = CachedStream(preset, n);
  DistributedJoinOptions options = BaseJoinOptions(threshold, kJoiners);
  options.strategy = strategy;
  options.window = WindowSpec::ByCount(n / 2);
  if (strategy == DistributionStrategy::kLengthBased) {
    options.length_partition = PlanLengthPartition(
        stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  }
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
}

void BM_Length_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kLengthBased, DatasetPreset::kTweet);
}
void BM_Prefix_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kPrefixBased, DatasetPreset::kTweet);
}
void BM_Broadcast_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kBroadcast, DatasetPreset::kTweet);
}
void BM_Replicated_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kReplicated, DatasetPreset::kTweet);
}
void BM_Length_Enron(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kLengthBased, DatasetPreset::kEnron);
}
void BM_Prefix_Enron(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kPrefixBased, DatasetPreset::kEnron);
}
void BM_Broadcast_Enron(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kBroadcast, DatasetPreset::kEnron);
}

#define DSSJ_THRESHOLDS ->Arg(600)->Arg(700)->Arg(800)->Arg(900)->Arg(950)

BENCHMARK(BM_Length_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Prefix_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Broadcast_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Replicated_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Length_Enron) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Prefix_Enron) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Broadcast_Enron) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

#undef DSSJ_THRESHOLDS

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
