// Experiment E2 — throughput vs similarity threshold, per distribution
// strategy, on two workload shapes (the paper's headline figure:
// length-based distribution beats prefix-based and broadcast by up to an
// order of magnitude).
//
//  * TWEET: short records — dispatch overhead matters, prefixes are short.
//  * ENRON: long records — prefix-based replicates to almost every worker
//    (long prefixes) and length-based dominates.
//
// rec_per_s_scaled models a cluster (records / busiest-task time); on this
// single-core host wall clock merely sums all tasks (see EXPERIMENTS.md).
//
// Usage: bench_throughput_threshold [--emit_json=PATH] [--runs=N]
//                                   [google-benchmark flags]
//   --emit_json=PATH  skip the benchmark harness and instead measure the
//                     hot-path optimizations before/after (batch_size=1 +
//                     scalar verify kernel vs batch_size=32 + block kernel)
//                     at threshold 0.8 on the TWEET and DBLP presets, plus
//                     the local joiners, and write machine-readable JSON
//                     (median of --runs runs, default 3) to PATH.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/bundle_joiner.h"
#include "core/record_joiner.h"
#include "core/verify.h"
#include "store/format.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace dssj::bench {
namespace {

constexpr int kJoiners = 8;

size_t RecordsFor(DatasetPreset preset) {
  return preset == DatasetPreset::kEnron ? 20000 : 40000;
}

void RunStrategy(benchmark::State& state, DistributionStrategy strategy,
                 DatasetPreset preset) {
  const int64_t threshold = state.range(0);
  const size_t n = RecordsFor(preset);
  const auto& stream = CachedStream(preset, n);
  DistributedJoinOptions options = BaseJoinOptions(threshold, kJoiners);
  options.strategy = strategy;
  options.window = WindowSpec::ByCount(n / 2);
  if (strategy == DistributionStrategy::kLengthBased) {
    options.length_partition = PlanLengthPartition(
        stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  }
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
}

void BM_Length_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kLengthBased, DatasetPreset::kTweet);
}
void BM_Prefix_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kPrefixBased, DatasetPreset::kTweet);
}
void BM_Broadcast_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kBroadcast, DatasetPreset::kTweet);
}
void BM_Replicated_Tweet(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kReplicated, DatasetPreset::kTweet);
}
void BM_Length_Enron(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kLengthBased, DatasetPreset::kEnron);
}
void BM_Prefix_Enron(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kPrefixBased, DatasetPreset::kEnron);
}
void BM_Broadcast_Enron(benchmark::State& state) {
  RunStrategy(state, DistributionStrategy::kBroadcast, DatasetPreset::kEnron);
}

// Transport batch-size sweep at the headline configuration (length-based,
// TWEET, t=0.8): how much of the wall-clock win batching delivers, and
// where it saturates.
void BM_Length_Tweet_BatchSize(benchmark::State& state) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = static_cast<size_t>(state.range(0));
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
}

// Supervision/checkpoint overhead sweep at the same headline configuration.
// Arg is the checkpoint interval in tuples per stateful task; 0 means
// supervised but never checkpointing (pure supervision overhead), -1 means
// supervision fully off (the unsupervised fast path, for reference).
void BM_Length_Tweet_CheckpointInterval(benchmark::State& state) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  if (state.range(0) >= 0) {
    options.supervise = true;
    options.supervision.checkpoint_interval = static_cast<uint64_t>(state.range(0));
  }
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
  state.counters["checkpoints"] = static_cast<double>(result.checkpoints);
  state.counters["checkpoint_MB"] = static_cast<double>(result.checkpoint_bytes) / 1e6;
}

// Same sweep with the tiered store in async-delta mode (docs/INTERNALS.md
// §13): the task freezes a copy-on-write view and a checkpoint thread does
// the serialization + write, with every 8th checkpoint a compacting base.
// Compare against BM_Length_Tweet_CheckpointInterval at the same interval
// to read off the hot-path savings.
void BM_Length_Tweet_AsyncDeltaCheckpoint(benchmark::State& state) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  options.supervise = true;
  options.supervision.checkpoint_interval = static_cast<uint64_t>(state.range(0));
  options.checkpoint_mode = store::CheckpointMode::kAsync;
  options.delta_base_interval = 8;
  DistributedJoinResult result;
  for (auto _ : state) {
    char dir_template[] = "/tmp/dssj_bench_store_XXXXXX";
    const char* dir = mkdtemp(dir_template);
    options.store_dir = dir != nullptr ? dir : "/tmp/dssj_bench_store";
    result = RunDistributedJoin(stream, options);
    store::RemoveTree(options.store_dir);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
  state.counters["delta_ckpts"] = static_cast<double>(result.delta_checkpoints);
  state.counters["base_ckpts"] = static_cast<double>(result.base_checkpoints);
  state.counters["delta_MB"] = static_cast<double>(result.delta_checkpoint_bytes) / 1e6;
  state.counters["base_MB"] = static_cast<double>(result.base_checkpoint_bytes) / 1e6;
}

#define DSSJ_THRESHOLDS ->Arg(600)->Arg(700)->Arg(800)->Arg(900)->Arg(950)

BENCHMARK(BM_Length_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Prefix_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Broadcast_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Replicated_Tweet) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Length_Enron) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Prefix_Enron) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Broadcast_Enron) DSSJ_THRESHOLDS
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

#undef DSSJ_THRESHOLDS

BENCHMARK(BM_Length_Tweet_BatchSize)->Arg(1)->Arg(4)->Arg(16)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

BENCHMARK(BM_Length_Tweet_CheckpointInterval)
    ->Arg(-1)->Arg(0)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

BENCHMARK(BM_Length_Tweet_AsyncDeltaCheckpoint)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

// Core-count scaling of the link fabric, in two views. Both run executor
// threads pinned round-robin across cores with strict per-tuple transport
// (batch_size=1) so every tuple pays one queue operation and the fabric —
// mutex+condvar vs lock-free ring — is the variable under test, not
// amortized away by batching (that amortization is the batch-size axis
// above). rec_per_s_scaled (records / busiest-task busy time) is the
// cluster-model metric; on a single-core host wall clock only serializes
// the tasks.
//
//  * BM_Cores_* — the scaling sweep: 1/2/4/8 joiners with dispatchers
//    sharded alongside (otherwise the single routing task becomes the
//    serial Amdahl stage past 4 joiners and the sweep measures the
//    dispatcher, not the joiners). Prefix-based distribution at t=0.9:
//    token-hash routing spreads load far more evenly across 2..8 joiners
//    than a coarse length partition, so the bottleneck joiner actually
//    shrinks with every doubling and the sweep isolates scaling from
//    partition skew. Sharded dispatch makes every dispatcher→joiner link a
//    fan-in MPMC ring, and trades exactly-once for best-effort emission (a
//    few pairs can drop across dispatchers — E10), so result counts here
//    are approximate by design.
//  * BM_CoresSerialDispatch_* — the fabric-stress cell: 8 joiners behind
//    ONE dispatcher (length-based, t=0.8), the regime where the fabric's
//    wake discipline decides the bottleneck. Every push lands on a starved,
//    parked joiner, so the mutex queue's level-triggered notify costs the
//    dispatcher a wake syscall per tuple, while the ring's edge-triggered
//    wakes plus the TrickleGate nap protocol (ring_queue.h) let it skip
//    them almost entirely.
void RunCores(benchmark::State& state, stream::QueueImpl impl) {
  const int joiners = static_cast<int>(state.range(0));
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(900, joiners);
  options.strategy = DistributionStrategy::kPrefixBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = 1;
  options.queue_impl = impl;
  options.pin_threads = true;
  options.num_dispatchers = joiners;
  options.collect_results = false;
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
}

void RunCoresSerialDispatch(benchmark::State& state, stream::QueueImpl impl) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = 1;
  options.queue_impl = impl;
  options.pin_threads = true;
  options.collect_results = false;
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  ReportJoinResult(state, result);
}

void BM_Cores_Mutex(benchmark::State& state) {
  RunCores(state, stream::QueueImpl::kMutex);
}
void BM_Cores_Ring(benchmark::State& state) {
  RunCores(state, stream::QueueImpl::kRing);
}
void BM_CoresSerialDispatch_Mutex(benchmark::State& state) {
  RunCoresSerialDispatch(state, stream::QueueImpl::kMutex);
}
void BM_CoresSerialDispatch_Ring(benchmark::State& state) {
  RunCoresSerialDispatch(state, stream::QueueImpl::kRing);
}

BENCHMARK(BM_Cores_Mutex)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Cores_Ring)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_CoresSerialDispatch_Mutex)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_CoresSerialDispatch_Ring)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

// ---------------------------------------------------------------------------
// --emit_json mode: before/after measurement of the hot-path optimizations.
// ---------------------------------------------------------------------------

struct DistMeasurement {
  double wall_rps = 0.0;
  double scaled_rps = 0.0;
  uint64_t results = 0;
};

DistMeasurement MeasureDistributedOnce(DatasetPreset preset, size_t batch_size,
                                       VerifyKernel kernel) {
  const size_t n = RecordsFor(preset);
  const auto& stream = CachedStream(preset, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = batch_size;
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  SetVerifyKernel(kernel);
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  SetVerifyKernel(VerifyKernel::kBlock);
  return {r.throughput_rps, r.scaled_throughput_rps, r.result_count};
}

/// One pinned strict-per-tuple scaling-sweep run (see BM_Cores_*).
DistMeasurement MeasureCoresOnce(int joiners, stream::QueueImpl impl) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(900, joiners);
  options.strategy = DistributionStrategy::kPrefixBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = 1;
  options.queue_impl = impl;
  options.pin_threads = true;
  options.num_dispatchers = joiners;
  options.collect_results = false;
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  return {r.throughput_rps, r.scaled_throughput_rps, r.result_count};
}

/// One serial-dispatch fabric-stress run (see BM_CoresSerialDispatch_*).
DistMeasurement MeasureSerialDispatchOnce(stream::QueueImpl impl) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = 1;
  options.queue_impl = impl;
  options.pin_threads = true;
  options.collect_results = false;
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  return {r.throughput_rps, r.scaled_throughput_rps, r.result_count};
}

struct FrontEndMeasurement {
  double wall_rps = 0.0;
  double scaled_rps = 0.0;
  uint64_t results = 0;
  std::vector<DistributedJoinResult::StageTime> stage_times;
};

/// One sharded-front-end run: the serial_dispatch configuration (length
/// routing, t=0.8, 8 joiners, batch 1, pinned) with the ingestion front end
/// split into `lanes` partner lanes. Strict per-tuple transport keeps the
/// reader/router tier the bottleneck — the exact regime the serial_dispatch
/// cell shows saturating — so the sweep measures how far lanes push it.
FrontEndMeasurement MeasureFrontEndOnce(int lanes) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.batch_size = 1;
  options.pin_threads = true;
  options.ingest_lanes = lanes;
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  FrontEndMeasurement m;
  m.wall_rps = r.throughput_rps;
  m.scaled_rps = r.scaled_throughput_rps;
  m.results = r.result_count;
  m.stage_times = r.stage_times;
  return m;
}

/// Per-stage busy/idle/blocked breakdown for one front-end cell, to stderr.
/// `idle` is executor wall starved on an empty inbound queue; `blocked` is
/// collector wall pushing downstream (backpressure included).
void PrintStageTable(const char* label,
                     const std::vector<DistributedJoinResult::StageTime>& stages) {
  std::fprintf(stderr, "[front_end %s] pipeline breakdown:\n", label);
  std::fprintf(stderr, "  %-12s %5s %10s %10s %10s\n", "component", "tasks",
               "busy_ms", "idle_ms", "blocked_ms");
  for (const DistributedJoinResult::StageTime& st : stages) {
    std::fprintf(stderr, "  %-12s %5d %10.1f %10.1f %10.1f\n", st.component.c_str(),
                 st.tasks, st.busy_micros / 1000.0, st.idle_micros / 1000.0,
                 st.blocked_micros / 1000.0);
  }
}

struct CorpusLoadMeasurement {
  double serial_ms = 0.0;
  double sharded_ms = 0.0;
  size_t lines = 0;
  size_t bytes = 0;
};

/// Times the sharded corpus load (reader + tokenizer + dictionary stitch)
/// at 1 vs 4 lanes over a synthetic on-disk corpus. Results are verified
/// byte-identical in text_test; here we only time them.
CorpusLoadMeasurement MeasureCorpusLoad() {
  const char* path = "/tmp/dssj_bench_corpus.txt";
  CorpusLoadMeasurement out;
  {
    std::string blob;
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int line = 0; line < 60000; ++line) {
      const int words = 4 + static_cast<int>(rng % 12);
      for (int w = 0; w < words; ++w) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        blob += "tok" + std::to_string((rng >> 33) % 5000);
        blob += w + 1 < words ? ' ' : '\n';
      }
      ++out.lines;
    }
    out.bytes = blob.size();
    std::FILE* f = std::fopen(path, "wb");
    if (f == nullptr) return out;
    std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
  }
  const WordTokenizer tokenizer;
  const auto time_load = [&](int lanes) {
    const auto start = std::chrono::steady_clock::now();
    const auto corpus = LoadCorpusFromFileSharded(path, tokenizer, lanes);
    const auto stop = std::chrono::steady_clock::now();
    if (!corpus.ok()) return 0.0;
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  time_load(1);  // warm the page cache so both cells read warm
  out.serial_ms = time_load(1);
  out.sharded_ms = time_load(4);
  std::remove(path);
  return out;
}

void BM_FrontEnd_Lanes(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  FrontEndMeasurement m;
  for (auto _ : state) m = MeasureFrontEndOnce(lanes);
  state.SetItemsProcessed(static_cast<int64_t>(RecordsFor(DatasetPreset::kTweet)) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["rec_per_s_wall"] = m.wall_rps;
  state.counters["rec_per_s_scaled"] = m.scaled_rps;
  state.counters["results"] = static_cast<double>(m.results);
}
BENCHMARK(BM_FrontEnd_Lanes)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

struct CheckpointMeasurement {
  double wall_rps = 0.0;
  double scaled_rps = 0.0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t results = 0;
};

/// One supervised run on TWEET at t=0.8; interval < 0 disables supervision.
CheckpointMeasurement MeasureCheckpointOnce(int64_t interval) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  if (interval >= 0) {
    options.supervise = true;
    options.supervision.checkpoint_interval = static_cast<uint64_t>(interval);
  }
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  return {r.throughput_rps, r.scaled_throughput_rps, r.checkpoints, r.checkpoint_bytes,
          r.result_count};
}

struct TieredMeasurement {
  double wall_rps = 0.0;
  double scaled_rps = 0.0;
  uint64_t delta_checkpoints = 0;
  uint64_t base_checkpoints = 0;
  uint64_t delta_bytes = 0;
  uint64_t base_bytes = 0;
  uint64_t results = 0;
};

/// One store-backed supervised run at the headline configuration. The store
/// root is a fresh mkdtemp dir, removed before returning, so repeated runs
/// never compose against each other's chains.
TieredMeasurement MeasureTieredOnce(int64_t interval, store::CheckpointMode mode,
                                    uint32_t delta_base_interval) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  options.supervise = true;
  options.supervision.checkpoint_interval = static_cast<uint64_t>(interval);
  char dir_template[] = "/tmp/dssj_bench_store_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  options.store_dir = dir != nullptr ? dir : "/tmp/dssj_bench_store";
  options.checkpoint_mode = mode;
  options.delta_base_interval = delta_base_interval;
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  store::RemoveTree(options.store_dir);
  return {r.throughput_rps,          r.scaled_throughput_rps, r.delta_checkpoints,
          r.base_checkpoints,        r.delta_checkpoint_bytes, r.base_checkpoint_bytes,
          r.result_count};
}

struct SpillMeasurement {
  double wall_rps = 0.0;
  uint64_t results = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_reads = 0;
  uint64_t evictions = 0;
};

enum class BudgetMode { kUnlimited, kEvict, kSpill };

/// Windows-larger-than-RAM scenario: the same headline join, but each
/// joiner's index budget is far below what the window needs. kEvict drops
/// cold records (recall loss), kSpill moves them to disk stubs and reads
/// them back on surviving-candidate probes (full recall).
SpillMeasurement MeasureSpillOnce(BudgetMode budget, size_t max_index_bytes) {
  const size_t n = RecordsFor(DatasetPreset::kTweet);
  const auto& stream = CachedStream(DatasetPreset::kTweet, n);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(n / 2);
  options.length_partition = PlanLengthPartition(
      stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  std::string spill_dir;
  if (budget != BudgetMode::kUnlimited) {
    options.max_index_bytes = max_index_bytes;
    options.supervise = true;
    options.supervision.checkpoint_interval = 1024;
    if (budget == BudgetMode::kSpill) {
      char dir_template[] = "/tmp/dssj_bench_spill_XXXXXX";
      const char* dir = mkdtemp(dir_template);
      spill_dir = dir != nullptr ? dir : "/tmp/dssj_bench_spill";
      options.store_dir = spill_dir;
      options.checkpoint_mode = store::CheckpointMode::kAsync;
      options.spill_watermark = 0.5;
    }
  }
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  if (!spill_dir.empty()) store::RemoveTree(spill_dir);
  return {r.throughput_rps, r.result_count, r.spilled_bytes, r.spill_reads,
          r.budget_evictions};
}

struct LoadMeasurement {
  double wall_rps = 0.0;
  uint64_t p99_us = 0;
  uint64_t results = 0;
  uint64_t shed_probes = 0;
};

/// One paced run (rate 0 = unthrottled) at the headline configuration with a
/// modest queue so overload is visible, optionally shedding probes.
LoadMeasurement MeasureOfferedLoadOnce(const std::vector<RecordPtr>& stream,
                                       const LengthPartition& partition,
                                       double arrival_rate,
                                       stream::ShedPolicy policy) {
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(stream.size() / 2);
  options.length_partition = partition;
  options.collect_results = false;
  options.queue_capacity = 512;
  options.arrival_rate_per_sec = arrival_rate;
  options.shed_policy = policy;
  options.shed_watermark = 0.75;
  const DistributedJoinResult r = RunDistributedJoin(stream, options);
  return {r.throughput_rps, r.latency.p99_us, r.result_count, r.shed_probes};
}

struct LocalMeasurement {
  double rps = 0.0;
  uint64_t results = 0;
};

LocalMeasurement MeasureLocalOnce(LocalAlgorithm algorithm, VerifyKernel kernel,
                                  size_t records) {
  const auto& stream = CachedDupStream(0.4, records);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const WindowSpec window = WindowSpec::ByCount(20000);
  SetVerifyKernel(kernel);
  std::unique_ptr<LocalJoiner> joiner;
  if (algorithm == LocalAlgorithm::kRecord) {
    joiner = std::make_unique<RecordJoiner>(sim, window);
  } else {
    joiner = std::make_unique<BundleJoiner>(sim, window);
  }
  uint64_t sink = 0;
  const auto begin = std::chrono::steady_clock::now();
  for (const RecordPtr& r : stream) {
    joiner->Process(r, /*store=*/true, /*probe=*/true,
                    [&sink](const ResultPair&) { ++sink; });
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  SetVerifyKernel(VerifyKernel::kBlock);
  benchmark::DoNotOptimize(sink);
  return {seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0,
          joiner->stats().results};
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n == 0 ? 0.0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0);
}

const char* PresetName(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kAol:
      return "aol";
    case DatasetPreset::kTweet:
      return "tweet";
    case DatasetPreset::kEnron:
      return "enron";
    case DatasetPreset::kDblp:
      return "dblp";
  }
  return "unknown";
}

int EmitJson(const std::string& path, int runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"hot_path_before_after\",\n"
               "  \"threshold_permille\": 800,\n"
               "  \"joiners\": %d,\n"
               "  \"runs_per_config\": %d,\n"
               "  \"baseline_config\": {\"batch_size\": 1, \"verify_kernel\": \"scalar\"},\n"
               "  \"optimized_config\": {\"batch_size\": 32, \"verify_kernel\": \"block\"},\n",
               kJoiners, runs);

  std::fprintf(f, "  \"distributed\": [\n");
  const DatasetPreset presets[] = {DatasetPreset::kTweet, DatasetPreset::kDblp};
  for (size_t p = 0; p < 2; ++p) {
    const DatasetPreset preset = presets[p];
    std::vector<double> base_wall, base_scaled, opt_wall, opt_scaled;
    uint64_t base_results = 0, opt_results = 0;
    for (int i = 0; i < runs; ++i) {
      const DistMeasurement b =
          MeasureDistributedOnce(preset, 1, VerifyKernel::kScalar);
      base_wall.push_back(b.wall_rps);
      base_scaled.push_back(b.scaled_rps);
      base_results = b.results;
      const DistMeasurement o =
          MeasureDistributedOnce(preset, 32, VerifyKernel::kBlock);
      opt_wall.push_back(o.wall_rps);
      opt_scaled.push_back(o.scaled_rps);
      opt_results = o.results;
    }
    const double bw = Median(base_wall), ow = Median(opt_wall);
    const double bs = Median(base_scaled), os = Median(opt_scaled);
    std::fprintf(f,
                 "    {\"preset\": \"%s\", \"records\": %zu,\n"
                 "     \"baseline\": {\"rec_per_s_wall\": %.1f, \"rec_per_s_scaled\": %.1f, "
                 "\"results\": %llu},\n"
                 "     \"optimized\": {\"rec_per_s_wall\": %.1f, \"rec_per_s_scaled\": %.1f, "
                 "\"results\": %llu},\n"
                 "     \"speedup_wall\": %.3f, \"speedup_scaled\": %.3f}%s\n",
                 PresetName(preset), RecordsFor(preset), bw, bs,
                 static_cast<unsigned long long>(base_results), ow, os,
                 static_cast<unsigned long long>(opt_results),
                 bw > 0.0 ? ow / bw : 0.0, bs > 0.0 ? os / bs : 0.0,
                 p + 1 < 2 ? "," : "");
    std::fprintf(stderr, "[distributed %s] baseline %.0f rec/s wall -> optimized %.0f "
                 "rec/s wall (%.2fx); results %llu vs %llu\n",
                 PresetName(preset), bw, ow, bw > 0.0 ? ow / bw : 0.0,
                 static_cast<unsigned long long>(base_results),
                 static_cast<unsigned long long>(opt_results));
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"local\": [\n");
  const LocalAlgorithm algos[] = {LocalAlgorithm::kRecord, LocalAlgorithm::kBundle};
  const char* algo_names[] = {"record", "bundle"};
  const size_t local_records = 30000;
  for (size_t a = 0; a < 2; ++a) {
    std::vector<double> base_rps, opt_rps;
    uint64_t base_results = 0, opt_results = 0;
    for (int i = 0; i < runs; ++i) {
      const LocalMeasurement b =
          MeasureLocalOnce(algos[a], VerifyKernel::kScalar, local_records);
      base_rps.push_back(b.rps);
      base_results = b.results;
      const LocalMeasurement o =
          MeasureLocalOnce(algos[a], VerifyKernel::kBlock, local_records);
      opt_rps.push_back(o.rps);
      opt_results = o.results;
    }
    const double br = Median(base_rps), orr = Median(opt_rps);
    std::fprintf(f,
                 "    {\"joiner\": \"%s\", \"dup_fraction\": 0.4, \"records\": %zu,\n"
                 "     \"baseline\": {\"rec_per_s\": %.1f, \"results\": %llu},\n"
                 "     \"optimized\": {\"rec_per_s\": %.1f, \"results\": %llu},\n"
                 "     \"speedup\": %.3f}%s\n",
                 algo_names[a], local_records, br,
                 static_cast<unsigned long long>(base_results), orr,
                 static_cast<unsigned long long>(opt_results),
                 br > 0.0 ? orr / br : 0.0, a + 1 < 2 ? "," : "");
    std::fprintf(stderr, "[local %s] scalar %.0f rec/s -> block %.0f rec/s (%.2fx)\n",
                 algo_names[a], br, orr, br > 0.0 ? orr / br : 0.0);
  }
  std::fprintf(f, "  ],\n");

  // Supervision/checkpoint overhead axis: same headline configuration
  // (length-based, TWEET, t=0.8); interval -1 = supervision off (reference),
  // 0 = supervised without checkpoints, else checkpoint every N tuples.
  std::fprintf(f, "  \"checkpoint_overhead\": [\n");
  const int64_t intervals[] = {-1, 0, 256, 1024, 4096};
  const size_t num_intervals = sizeof(intervals) / sizeof(intervals[0]);
  double off_rps = 0.0, off_scaled = 0.0;
  for (size_t k = 0; k < num_intervals; ++k) {
    std::vector<double> wall, scaled;
    uint64_t checkpoints = 0, bytes = 0, results = 0;
    for (int i = 0; i < runs; ++i) {
      const CheckpointMeasurement m = MeasureCheckpointOnce(intervals[k]);
      wall.push_back(m.wall_rps);
      scaled.push_back(m.scaled_rps);
      checkpoints = m.checkpoints;
      bytes = m.checkpoint_bytes;
      results = m.results;
    }
    const double w = Median(wall);
    if (intervals[k] < 0) {
      off_rps = w;
      off_scaled = Median(scaled);
    }
    std::fprintf(f,
                 "    {\"checkpoint_interval\": %lld, \"supervised\": %s,\n"
                 "     \"rec_per_s_wall\": %.1f, \"relative_to_unsupervised\": %.3f,\n"
                 "     \"checkpoints\": %llu, \"checkpoint_bytes\": %llu, "
                 "\"results\": %llu}%s\n",
                 static_cast<long long>(intervals[k]),
                 intervals[k] >= 0 ? "true" : "false", w,
                 off_rps > 0.0 ? w / off_rps : 0.0,
                 static_cast<unsigned long long>(checkpoints),
                 static_cast<unsigned long long>(bytes),
                 static_cast<unsigned long long>(results),
                 k + 1 < num_intervals ? "," : "");
    std::fprintf(stderr,
                 "[checkpoint interval=%lld] %.0f rec/s wall, %llu checkpoints, "
                 "%llu bytes\n",
                 static_cast<long long>(intervals[k]), w,
                 static_cast<unsigned long long>(checkpoints),
                 static_cast<unsigned long long>(bytes));
  }
  std::fprintf(f, "  ],\n");

  // Tiered state store axis (docs/INTERNALS.md §13): at each checkpoint
  // interval, the synchronous store (full image encoded + written on the
  // hot path, every checkpoint a base) against the async-delta store
  // (copy-on-write freeze, checkpoint thread writes, every 8th a base);
  // both relative to the unsupervised reference measured above. Then the
  // windows-larger-than-RAM run: the same join with a per-joiner index
  // budget far below the window, evicting (recall loss) vs spilling
  // (full recall, disk reads on surviving candidates).
  std::fprintf(f, "  \"tiered_state\": {\n");
  std::fprintf(f,
               "    \"preset\": \"tweet\", \"records\": %zu, "
               "\"delta_base_interval\": 8,\n"
               "    \"unsupervised_rec_per_s\": %.1f, "
               "\"unsupervised_rec_per_s_scaled\": %.1f,\n"
               "    \"checkpoint_sweep\": [\n",
               RecordsFor(DatasetPreset::kTweet), off_rps, off_scaled);
  const int64_t tiered_intervals[] = {64, 256, 1024};
  const size_t num_tiered = sizeof(tiered_intervals) / sizeof(tiered_intervals[0]);
  for (size_t k = 0; k < num_tiered; ++k) {
    std::vector<double> sync_wall, async_wall, sync_scaled, async_scaled;
    TieredMeasurement sync_last, async_last;
    for (int i = 0; i < runs; ++i) {
      sync_last = MeasureTieredOnce(tiered_intervals[k], store::CheckpointMode::kSync, 8);
      sync_wall.push_back(sync_last.wall_rps);
      sync_scaled.push_back(sync_last.scaled_rps);
      async_last = MeasureTieredOnce(tiered_intervals[k], store::CheckpointMode::kAsync, 8);
      async_wall.push_back(async_last.wall_rps);
      async_scaled.push_back(async_last.scaled_rps);
    }
    const double sw = Median(sync_wall), aw = Median(async_wall);
    const double ss = Median(sync_scaled), as = Median(async_scaled);
    std::fprintf(f,
                 "      {\"checkpoint_interval\": %lld,\n"
                 "       \"sync_full\": {\"rec_per_s_wall\": %.1f, "
                 "\"rec_per_s_scaled\": %.1f,\n"
                 "        \"relative_scaled\": %.3f,\n"
                 "        \"base_checkpoints\": %llu, \"base_checkpoint_bytes\": %llu},\n"
                 "       \"async_delta\": {\"rec_per_s_wall\": %.1f, "
                 "\"rec_per_s_scaled\": %.1f,\n"
                 "        \"relative_scaled\": %.3f,\n"
                 "        \"delta_checkpoints\": %llu, \"delta_checkpoint_bytes\": %llu,\n"
                 "        \"base_checkpoints\": %llu, \"base_checkpoint_bytes\": %llu},\n"
                 "       \"async_over_sync_scaled\": %.3f, \"results\": %llu}%s\n",
                 static_cast<long long>(tiered_intervals[k]), sw, ss,
                 off_scaled > 0.0 ? ss / off_scaled : 0.0,
                 static_cast<unsigned long long>(sync_last.base_checkpoints),
                 static_cast<unsigned long long>(sync_last.base_bytes), aw, as,
                 off_scaled > 0.0 ? as / off_scaled : 0.0,
                 static_cast<unsigned long long>(async_last.delta_checkpoints),
                 static_cast<unsigned long long>(async_last.delta_bytes),
                 static_cast<unsigned long long>(async_last.base_checkpoints),
                 static_cast<unsigned long long>(async_last.base_bytes),
                 ss > 0.0 ? as / ss : 0.0,
                 static_cast<unsigned long long>(async_last.results),
                 k + 1 < num_tiered ? "," : "");
    std::fprintf(stderr,
                 "[tiered interval=%lld] sync %.0f rec/s scaled (%.3f of unsupervised), "
                 "async-delta %.0f rec/s scaled (%.3f); results %llu vs %llu\n",
                 static_cast<long long>(tiered_intervals[k]), ss,
                 off_scaled > 0.0 ? ss / off_scaled : 0.0, as,
                 off_scaled > 0.0 ? as / off_scaled : 0.0,
                 static_cast<unsigned long long>(sync_last.results),
                 static_cast<unsigned long long>(async_last.results));
  }
  std::fprintf(f, "    ],\n");
  {
    const size_t budget = 128 * 1024;  // per joiner; window needs several x this
    std::vector<double> unl_wall, evict_wall, spill_wall;
    SpillMeasurement unl_last, evict_last, spill_last;
    for (int i = 0; i < runs; ++i) {
      unl_last = MeasureSpillOnce(BudgetMode::kUnlimited, budget);
      unl_wall.push_back(unl_last.wall_rps);
      evict_last = MeasureSpillOnce(BudgetMode::kEvict, budget);
      evict_wall.push_back(evict_last.wall_rps);
      spill_last = MeasureSpillOnce(BudgetMode::kSpill, budget);
      spill_wall.push_back(spill_last.wall_rps);
    }
    const double unl_results = static_cast<double>(unl_last.results);
    std::fprintf(f,
                 "    \"spill\": {\"window\": %zu, \"max_index_bytes\": %zu, "
                 "\"spill_watermark\": 0.5,\n"
                 "      \"unlimited\": {\"rec_per_s_wall\": %.1f, \"results\": %llu},\n"
                 "      \"evict\": {\"rec_per_s_wall\": %.1f, \"results\": %llu, "
                 "\"recall\": %.4f, \"budget_evictions\": %llu},\n"
                 "      \"spill\": {\"rec_per_s_wall\": %.1f, \"results\": %llu, "
                 "\"recall\": %.4f, \"spilled_bytes\": %llu, \"spill_reads\": %llu}\n"
                 "    }\n",
                 RecordsFor(DatasetPreset::kTweet) / 2, budget, Median(unl_wall),
                 static_cast<unsigned long long>(unl_last.results), Median(evict_wall),
                 static_cast<unsigned long long>(evict_last.results),
                 unl_results > 0.0 ? static_cast<double>(evict_last.results) / unl_results
                                   : 0.0,
                 static_cast<unsigned long long>(evict_last.evictions), Median(spill_wall),
                 static_cast<unsigned long long>(spill_last.results),
                 unl_results > 0.0 ? static_cast<double>(spill_last.results) / unl_results
                                   : 0.0,
                 static_cast<unsigned long long>(spill_last.spilled_bytes),
                 static_cast<unsigned long long>(spill_last.spill_reads));
    std::fprintf(stderr,
                 "[spill] unlimited %.0f rec/s (%llu results), evict %.0f rec/s "
                 "(recall %.4f, %llu evictions), spill %.0f rec/s (recall %.4f, "
                 "%llu spilled bytes, %llu reads)\n",
                 Median(unl_wall), static_cast<unsigned long long>(unl_last.results),
                 Median(evict_wall),
                 unl_results > 0.0 ? static_cast<double>(evict_last.results) / unl_results
                                   : 0.0,
                 static_cast<unsigned long long>(evict_last.evictions), Median(spill_wall),
                 unl_results > 0.0 ? static_cast<double>(spill_last.results) / unl_results
                                   : 0.0,
                 static_cast<unsigned long long>(spill_last.spilled_bytes),
                 static_cast<unsigned long long>(spill_last.spill_reads));
  }
  std::fprintf(f, "  },\n");

  // Core-count axis of the link fabric, two views (see the BM_Cores_*
  // comment block): "scaling" sweeps 1/2/4/8 joiners with sharded
  // dispatchers (prefix-based t=0.9 — balanced partitions, so the curve
  // measures scaling rather than skew), and "serial_dispatch" stresses the
  // per-tuple wake discipline with 8 joiners behind one dispatcher
  // (length-based t=0.8). Mutex and ring runs interleave within each
  // repetition so host CPU-frequency drift hits both sides equally;
  // medians per config.
  std::fprintf(f, "  \"cores\": {\n");
  std::fprintf(f,
               "    \"preset\": \"tweet\", \"records\": %zu, \"batch_size\": 1,\n"
               "    \"pinned\": true,\n"
               "    \"scaling\": {\n"
               "      \"strategy\": \"prefix\", \"threshold_permille\": 900,\n"
               "      \"dispatchers\": \"sharded_with_joiners\",\n"
               "      \"sweep\": [\n",
               RecordsFor(DatasetPreset::kTweet));
  const int joiner_counts[] = {1, 2, 4, 8};
  const size_t num_counts = sizeof(joiner_counts) / sizeof(joiner_counts[0]);
  double ring_scaled_1 = 0.0;
  for (size_t k = 0; k < num_counts; ++k) {
    std::vector<double> mutex_wall, mutex_scaled, ring_wall, ring_scaled;
    uint64_t mutex_results = 0, ring_results = 0;
    for (int i = 0; i < runs; ++i) {
      const DistMeasurement m =
          MeasureCoresOnce(joiner_counts[k], stream::QueueImpl::kMutex);
      mutex_wall.push_back(m.wall_rps);
      mutex_scaled.push_back(m.scaled_rps);
      mutex_results = m.results;
      const DistMeasurement r =
          MeasureCoresOnce(joiner_counts[k], stream::QueueImpl::kRing);
      ring_wall.push_back(r.wall_rps);
      ring_scaled.push_back(r.scaled_rps);
      ring_results = r.results;
    }
    const double ms = Median(mutex_scaled), rs = Median(ring_scaled);
    if (joiner_counts[k] == 1) ring_scaled_1 = rs;
    std::fprintf(f,
                 "        {\"joiners\": %d,\n"
                 "         \"mutex\": {\"rec_per_s_wall\": %.1f, \"rec_per_s_scaled\": %.1f, "
                 "\"results\": %llu},\n"
                 "         \"ring\": {\"rec_per_s_wall\": %.1f, \"rec_per_s_scaled\": %.1f, "
                 "\"results\": %llu},\n"
                 "         \"ring_over_mutex_scaled\": %.3f, "
                 "\"ring_speedup_vs_1_joiner\": %.3f}%s\n",
                 joiner_counts[k], Median(mutex_wall), ms,
                 static_cast<unsigned long long>(mutex_results), Median(ring_wall), rs,
                 static_cast<unsigned long long>(ring_results), ms > 0.0 ? rs / ms : 0.0,
                 ring_scaled_1 > 0.0 ? rs / ring_scaled_1 : 0.0,
                 k + 1 < num_counts ? "," : "");
    std::fprintf(stderr,
                 "[cores scaling joiners=%d] mutex %.0f rec/s scaled, ring %.0f rec/s "
                 "scaled (%.2fx); results %llu vs %llu\n",
                 joiner_counts[k], ms, rs, ms > 0.0 ? rs / ms : 0.0,
                 static_cast<unsigned long long>(mutex_results),
                 static_cast<unsigned long long>(ring_results));
  }
  std::fprintf(f, "      ]\n    },\n");
  {
    std::vector<double> mutex_wall, mutex_scaled, ring_wall, ring_scaled;
    uint64_t mutex_results = 0, ring_results = 0;
    for (int i = 0; i < runs; ++i) {
      const DistMeasurement m = MeasureSerialDispatchOnce(stream::QueueImpl::kMutex);
      mutex_wall.push_back(m.wall_rps);
      mutex_scaled.push_back(m.scaled_rps);
      mutex_results = m.results;
      const DistMeasurement r = MeasureSerialDispatchOnce(stream::QueueImpl::kRing);
      ring_wall.push_back(r.wall_rps);
      ring_scaled.push_back(r.scaled_rps);
      ring_results = r.results;
    }
    const double ms = Median(mutex_scaled), rs = Median(ring_scaled);
    std::fprintf(f,
                 "    \"serial_dispatch\": {\n"
                 "      \"strategy\": \"length\", \"threshold_permille\": 800, "
                 "\"joiners\": %d, \"dispatchers\": 1,\n"
                 "      \"mutex\": {\"rec_per_s_wall\": %.1f, \"rec_per_s_scaled\": %.1f, "
                 "\"results\": %llu},\n"
                 "      \"ring\": {\"rec_per_s_wall\": %.1f, \"rec_per_s_scaled\": %.1f, "
                 "\"results\": %llu},\n"
                 "      \"ring_over_mutex_scaled\": %.3f\n"
                 "    }\n",
                 kJoiners, Median(mutex_wall), ms,
                 static_cast<unsigned long long>(mutex_results), Median(ring_wall), rs,
                 static_cast<unsigned long long>(ring_results), ms > 0.0 ? rs / ms : 0.0);
    std::fprintf(stderr,
                 "[cores serial_dispatch joiners=%d] mutex %.0f rec/s scaled, ring "
                 "%.0f rec/s scaled (%.2fx)\n",
                 kJoiners, ms, rs, ms > 0.0 ? rs / ms : 0.0);
  }
  std::fprintf(f, "  },\n");

  // Sharded ingestion front end (docs/INTERNALS.md §14): the serial_dispatch
  // configuration with the reader/router tier split into N partner lanes.
  // On this host wall clock cannot beat 1 lane (the sweep records the honest
  // number); rec_per_s_scaled divides the front-end work across lanes and is
  // the cluster-model speedup. Result counts must match across lanes — the
  // byte-identity proof lives in ingest_lanes_test.
  std::fprintf(f,
               "  \"front_end\": {\n"
               "    \"preset\": \"tweet\", \"records\": %zu,\n"
               "    \"strategy\": \"length\", \"threshold_permille\": 800, "
               "\"joiners\": %d,\n"
               "    \"batch_size\": 1, \"pinned\": true, \"host_cores\": %u,\n"
               "    \"sweep\": [\n",
               RecordsFor(DatasetPreset::kTweet), kJoiners,
               std::thread::hardware_concurrency());
  {
    const int lane_counts[] = {1, 2, 4, 8};
    const size_t num_lanes = sizeof(lane_counts) / sizeof(lane_counts[0]);
    double wall_1 = 0.0, scaled_1 = 0.0;
    uint64_t results_1 = 0;
    for (size_t k = 0; k < num_lanes; ++k) {
      std::vector<double> wall, scaled;
      FrontEndMeasurement last;
      for (int i = 0; i < runs; ++i) {
        last = MeasureFrontEndOnce(lane_counts[k]);
        wall.push_back(last.wall_rps);
        scaled.push_back(last.scaled_rps);
      }
      const double w = Median(wall), s = Median(scaled);
      if (lane_counts[k] == 1) {
        wall_1 = w;
        scaled_1 = s;
        results_1 = last.results;
      } else if (last.results != results_1) {
        std::fprintf(stderr,
                     "[front_end lanes=%d] RESULT MISMATCH: %llu vs %llu at 1 lane\n",
                     lane_counts[k], static_cast<unsigned long long>(last.results),
                     static_cast<unsigned long long>(results_1));
      }
      std::fprintf(f,
                   "      {\"lanes\": %d, \"rec_per_s_wall\": %.1f, "
                   "\"rec_per_s_scaled\": %.1f,\n"
                   "       \"results\": %llu, \"wall_speedup_vs_lanes_1\": %.3f, "
                   "\"scaled_speedup_vs_lanes_1\": %.3f,\n"
                   "       \"stages\": [",
                   lane_counts[k], w, s, static_cast<unsigned long long>(last.results),
                   wall_1 > 0.0 ? w / wall_1 : 0.0, scaled_1 > 0.0 ? s / scaled_1 : 0.0);
      for (size_t j = 0; j < last.stage_times.size(); ++j) {
        const DistributedJoinResult::StageTime& st = last.stage_times[j];
        std::fprintf(f,
                     "\n         {\"component\": \"%s\", \"tasks\": %d, "
                     "\"busy_ms\": %.1f, \"idle_ms\": %.1f, \"blocked_ms\": %.1f}%s",
                     st.component.c_str(), st.tasks, st.busy_micros / 1000.0,
                     st.idle_micros / 1000.0, st.blocked_micros / 1000.0,
                     j + 1 < last.stage_times.size() ? "," : "");
      }
      std::fprintf(f, "]}%s\n", k + 1 < num_lanes ? "," : "");
      std::fprintf(stderr,
                   "[front_end lanes=%d] %.0f rec/s wall (%.2fx), %.0f rec/s scaled "
                   "(%.2fx); results %llu\n",
                   lane_counts[k], w, wall_1 > 0.0 ? w / wall_1 : 0.0, s,
                   scaled_1 > 0.0 ? s / scaled_1 : 0.0,
                   static_cast<unsigned long long>(last.results));
      if (lane_counts[k] == 1 || lane_counts[k] == 4) {
        const std::string label = "lanes=" + std::to_string(lane_counts[k]);
        PrintStageTable(label.c_str(), last.stage_times);
      }
    }
    std::fprintf(f, "    ],\n");
  }
  {
    const CorpusLoadMeasurement c = MeasureCorpusLoad();
    std::fprintf(f,
                 "    \"sharded_corpus_load\": {\"lines\": %zu, \"bytes\": %zu, "
                 "\"serial_ms\": %.1f, \"lanes4_ms\": %.1f, "
                 "\"wall_speedup\": %.3f}\n  },\n",
                 c.lines, c.bytes, c.serial_ms, c.sharded_ms,
                 c.sharded_ms > 0.0 ? c.serial_ms / c.sharded_ms : 0.0);
    std::fprintf(stderr,
                 "[front_end corpus_load] serial %.1f ms, 4 lanes %.1f ms (%.2fx) "
                 "over %zu lines\n",
                 c.serial_ms, c.sharded_ms,
                 c.sharded_ms > 0.0 ? c.serial_ms / c.sharded_ms : 0.0, c.lines);
  }

  // Offered-load sweep: arrival rate as a multiple of the measured
  // unthrottled capacity, with and without probe shedding (overload model,
  // docs/INTERNALS.md §8). p99 is end-to-end per-record latency of the
  // probes that ran; recall is results relative to the unthrottled shed-free
  // run — shedding loses exactly the shed probes' pairs, so the recall gap
  // is the quantified price of the latency bound.
  std::fprintf(f, "  \"offered_load\": {\n");
  {
    const size_t n = 12000;
    const auto& stream = CachedStream(DatasetPreset::kTweet, n);
    const LengthPartition partition =
        PlanLengthPartition(stream, BaseJoinOptions(800, kJoiners).sim, kJoiners,
                            PartitionMethod::kLoadAwareGreedy);
    const LoadMeasurement capacity =
        MeasureOfferedLoadOnce(stream, partition, 0.0, stream::ShedPolicy::kNone);
    std::fprintf(f,
                 "    \"preset\": \"tweet\", \"records\": %zu, \"queue_capacity\": 512,\n"
                 "    \"shed_watermark\": 0.75, \"capacity_rec_per_s\": %.1f,\n"
                 "    \"sweep\": [\n",
                 n, capacity.wall_rps);
    const double factors[] = {0.5, 1.0, 2.0};
    const size_t num_factors = sizeof(factors) / sizeof(factors[0]);
    for (size_t k = 0; k < num_factors; ++k) {
      for (int sh = 0; sh < 2; ++sh) {
        const stream::ShedPolicy policy =
            sh == 1 ? stream::ShedPolicy::kProbe : stream::ShedPolicy::kNone;
        const double rate = factors[k] * capacity.wall_rps;
        const LoadMeasurement m =
            MeasureOfferedLoadOnce(stream, partition, rate, policy);
        const double recall =
            capacity.results > 0
                ? static_cast<double>(m.results) / static_cast<double>(capacity.results)
                : 0.0;
        std::fprintf(f,
                     "      {\"offered_x_capacity\": %.1f, \"shed_policy\": \"%s\",\n"
                     "       \"offered_rec_per_s\": %.1f, \"achieved_rec_per_s\": %.1f,\n"
                     "       \"p99_us\": %llu, \"recall\": %.4f, \"shed_probes\": %llu}%s\n",
                     factors[k], stream::ShedPolicyName(policy), rate, m.wall_rps,
                     static_cast<unsigned long long>(m.p99_us), recall,
                     static_cast<unsigned long long>(m.shed_probes),
                     (k + 1 == num_factors && sh == 1) ? "" : ",");
        std::fprintf(stderr,
                     "[offered_load %.1fx %s] achieved %.0f rec/s, p99=%llu us, "
                     "recall=%.4f, shed=%llu\n",
                     factors[k], stream::ShedPolicyName(policy), m.wall_rps,
                     static_cast<unsigned long long>(m.p99_us), recall,
                     static_cast<unsigned long long>(m.shed_probes));
      }
    }
    std::fprintf(f, "    ]\n  }\n}\n");
  }
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace dssj::bench

int main(int argc, char** argv) {
  std::string json_path;
  int runs = 3;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit_json=", 12) == 0) {
      json_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
      if (runs < 1) runs = 1;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return dssj::bench::EmitJson(json_path, runs);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
