// Experiment E13 — similarity-function sweep (papers in this lineage
// tabulate Jaccard/Cosine/Dice side by side). Same stream, same permille
// threshold: cosine's looser length bound admits far more candidates than
// Jaccard's, dice sits between; throughput follows selectivity.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/record_joiner.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 30000;

void RunFunction(benchmark::State& state, SimilarityFunction fn) {
  const int64_t threshold = state.range(0);
  const auto& stream = CachedDupStream(0.4, kRecords);
  const SimilaritySpec sim(fn, threshold);
  uint64_t sink = 0;
  std::unique_ptr<RecordJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<RecordJoiner>(sim, WindowSpec::ByCount(20000));
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(SimilarityFunctionName(fn));
  state.SetItemsProcessed(static_cast<int64_t>(kRecords) * state.iterations());
  state.counters["results"] = static_cast<double>(joiner->stats().results);
  state.counters["candidates"] = static_cast<double>(joiner->stats().candidates);
  state.counters["postings_scanned"] =
      static_cast<double>(joiner->stats().postings_scanned);
  state.counters["rec_per_s"] = benchmark::Counter(
      static_cast<double>(kRecords) * state.iterations(), benchmark::Counter::kIsRate);
}

void BM_Jaccard(benchmark::State& state) {
  RunFunction(state, SimilarityFunction::kJaccard);
}
void BM_Cosine(benchmark::State& state) { RunFunction(state, SimilarityFunction::kCosine); }
void BM_Dice(benchmark::State& state) { RunFunction(state, SimilarityFunction::kDice); }

BENCHMARK(BM_Jaccard)->Arg(700)->Arg(800)->Arg(900)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cosine)->Arg(700)->Arg(800)->Arg(900)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dice)->Arg(700)->Arg(800)->Arg(900)->Unit(benchmark::kMillisecond);

// The distributed run for one representative threshold per function.
void RunDistFunction(benchmark::State& state, SimilarityFunction fn) {
  const auto& stream = CachedDupStream(0.4, 20000);
  DistributedJoinOptions options = BaseJoinOptions(800, 8);
  options.sim = SimilaritySpec(fn, 800);
  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 8, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  state.SetLabel(SimilarityFunctionName(fn));
  ReportJoinResult(state, result);
}

void BM_DistJaccard(benchmark::State& state) {
  RunDistFunction(state, SimilarityFunction::kJaccard);
}
void BM_DistCosine(benchmark::State& state) {
  RunDistFunction(state, SimilarityFunction::kCosine);
}
void BM_DistDice(benchmark::State& state) {
  RunDistFunction(state, SimilarityFunction::kDice);
}

BENCHMARK(BM_DistJaccard)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_DistCosine)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_DistDice)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
