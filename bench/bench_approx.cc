// Experiment E11 (extension) — the MinHash-LSH approximate joiner's
// recall/cost trade-off against the exact record joiner, plus the PPJoin+
// suffix-filter extension. Not a figure of the paper (listed as future
// work); included as the repository's ablation of the approximate mode.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/minhash_joiner.h"
#include "core/record_joiner.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 20000;

uint64_t ExactResultCount(const std::vector<RecordPtr>& stream, const SimilaritySpec& sim) {
  static std::map<int64_t, uint64_t> cache;
  auto it = cache.find(sim.threshold_permille());
  if (it == cache.end()) {
    RecordJoiner joiner(sim, WindowSpec::ByCount(15000));
    it = cache.emplace(sim.threshold_permille(), SingleNodeJoin(stream, joiner).size()).first;
  }
  return it->second;
}

void BM_MinHashRecall(benchmark::State& state) {
  const int bands = static_cast<int>(state.range(0));
  const auto& stream = CachedDupStream(0.4, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  MinHashJoinerOptions options;
  options.bands = bands;
  uint64_t found = 0;
  std::unique_ptr<MinHashJoiner> joiner;
  for (auto _ : state) {
    found = 0;
    joiner = std::make_unique<MinHashJoiner>(sim, WindowSpec::ByCount(15000), options);
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&found](const ResultPair&) { ++found; });
    }
  }
  const uint64_t truth = ExactResultCount(stream, sim);
  state.counters["recall"] =
      truth > 0 ? static_cast<double>(found) / static_cast<double>(truth) : 1.0;
  state.counters["candidates"] = static_cast<double>(joiner->stats().candidates);
  state.counters["rec_per_s"] = benchmark::Counter(
      static_cast<double>(kRecords) * state.iterations(), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_MinHashRecall)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ExactAnchor(benchmark::State& state) {
  const auto& stream = CachedDupStream(0.4, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  uint64_t found = 0;
  for (auto _ : state) {
    found = 0;
    RecordJoiner joiner(sim, WindowSpec::ByCount(15000));
    for (const RecordPtr& r : stream) {
      joiner.Process(r, true, true, [&found](const ResultPair&) { ++found; });
    }
  }
  benchmark::DoNotOptimize(found);
  state.counters["recall"] = 1.0;
  state.counters["rec_per_s"] = benchmark::Counter(
      static_cast<double>(kRecords) * state.iterations(), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ExactAnchor)->Unit(benchmark::kMillisecond);

void RunSuffix(benchmark::State& state, bool suffix) {
  const auto& stream = CachedDupStream(0.4, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  RecordJoinerOptions options;
  options.suffix_filter = suffix;
  options.suffix_filter_depth = static_cast<int>(state.range(0));
  uint64_t sink = 0;
  std::unique_ptr<RecordJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<RecordJoiner>(sim, WindowSpec::ByCount(15000), options);
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.counters["suffix_filtered"] = static_cast<double>(joiner->stats().suffix_filtered);
  state.counters["merge_steps"] = static_cast<double>(joiner->stats().verify.merge_steps);
}

void BM_SuffixFilterOn(benchmark::State& state) { RunSuffix(state, true); }
void BM_SuffixFilterOff(benchmark::State& state) { RunSuffix(state, false); }

BENCHMARK(BM_SuffixFilterOn)->Arg(2)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SuffixFilterOff)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
