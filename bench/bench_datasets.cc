// Experiment E1 — dataset statistics (the paper's "Table 1").
//
// Prints one row per dataset preset: records, vocabulary, avg/min/max
// length, head-token mass. Also times corpus generation + statistics as a
// benchmark so regressions in the generator show up.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "text/corpus.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 100000;

void BM_DatasetStats(benchmark::State& state) {
  const auto preset = static_cast<DatasetPreset>(state.range(0));
  const auto& stream = CachedStream(preset, kRecords);
  CorpusStats stats;
  for (auto _ : state) {
    stats = ComputeCorpusStats(stream);
    benchmark::DoNotOptimize(stats);
  }
  state.SetLabel(DatasetPresetName(preset));
  state.counters["records"] = static_cast<double>(stats.num_records);
  state.counters["vocab"] = static_cast<double>(stats.vocabulary_size);
  state.counters["avg_len"] = stats.avg_length;
  state.counters["min_len"] = static_cast<double>(stats.min_length);
  state.counters["max_len"] = static_cast<double>(stats.max_length);
  state.counters["top1pct_mass"] = stats.top1pct_token_mass;
}

BENCHMARK(BM_DatasetStats)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace dssj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::printf("E1 (Table 1): dataset statistics, %zu synthetic records per preset\n",
              dssj::bench::kRecords);
  std::printf("%-8s %10s %10s %8s %8s %8s %12s\n", "dataset", "records", "vocab", "avg|r|",
              "min|r|", "max|r|", "top1%mass");
  for (int p = 0; p <= 3; ++p) {
    const auto preset = static_cast<dssj::DatasetPreset>(p);
    const auto& stream = dssj::bench::CachedStream(preset, dssj::bench::kRecords);
    const dssj::CorpusStats s = dssj::ComputeCorpusStats(stream);
    std::printf("%-8s %10llu %10llu %8.1f %8llu %8llu %11.3f\n",
                dssj::DatasetPresetName(preset),
                static_cast<unsigned long long>(s.num_records),
                static_cast<unsigned long long>(s.vocabulary_size), s.avg_length,
                static_cast<unsigned long long>(s.min_length),
                static_cast<unsigned long long>(s.max_length), s.top1pct_token_mass);
  }
  std::printf("\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
