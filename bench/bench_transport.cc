// docs/INTERNALS.md §9 — what the real wire costs. Micro-benches measure
// frame encode/parse throughput for dispatcher-shaped tuples (Record
// payload + flags + timestamp); macro-benches run the identical join over
// the three transports: inproc (pointer-passing queues), loopback (every
// cross-worker tuple wire-encoded and re-parsed in process), and tcp (two
// ranks over localhost sockets, worker rank on a thread). The inproc →
// loopback gap is pure serialization/framing; loopback → tcp adds syscalls
// and the kernel loopback path. remote_byte_cost_ns is 0 here: the usual
// simulated per-byte charge would double-count exactly the cost this bench
// measures for real.

#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/transport.h"
#include "net/wire.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 20000;
constexpr int kJoiners = 8;
constexpr size_t kFrameBatch = 32;

std::vector<stream::Envelope> DispatcherBatch(const std::vector<RecordPtr>& stream) {
  std::vector<stream::Envelope> batch;
  for (size_t i = 0; i < kFrameBatch; ++i) {
    const RecordPtr& r = stream[i % stream.size()];
    stream::Envelope e;
    e.tuple = stream::MakeTuple(std::shared_ptr<const void>(r), int64_t{3},
                                static_cast<int64_t>(1000 + i));
    e.tuple.set_payload_bytes(r->SerializedBytes());
    e.source_task = 1;
    e.link_seq = i + 1;
    batch.push_back(std::move(e));
  }
  return batch;
}

void BM_WireEncodeFrames(benchmark::State& state) {
  const net::PayloadCodec codec = RecordWireCodec();
  const auto batch = DispatcherBatch(CachedStream(DatasetPreset::kTweet, 4096));
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    net::AppendEnvelopeFrames(2, batch, &codec, &bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kFrameBatch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes.size()));
}

void BM_WireParseFrames(benchmark::State& state) {
  const net::PayloadCodec codec = RecordWireCodec();
  const auto batch = DispatcherBatch(CachedStream(DatasetPreset::kTweet, 4096));
  std::string bytes;
  net::AppendEnvelopeFrames(2, batch, &codec, &bytes);
  for (auto _ : state) {
    size_t pos = 0;
    while (pos < bytes.size()) {
      net::Frame frame;
      size_t consumed = 0;
      std::string error;
      if (net::ParseFrame(bytes.data() + pos, bytes.size() - pos, &codec,
                          net::kDefaultMaxFrameBytes, &frame, &consumed,
                          &error) != net::ParseStatus::kFrame) {
        state.SkipWithError("parse failed");
        return;
      }
      pos += consumed;
      benchmark::DoNotOptimize(frame.envelopes.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kFrameBatch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes.size()));
}

DistributedJoinOptions TransportJoinOptions(const std::vector<RecordPtr>& stream) {
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.remote_byte_cost_ns = 0.0;  // measure the real cost, not the model
  options.num_workers = 2;
  options.length_partition = PlanLengthPartition(stream, options.sim, kJoiners,
                                                 PartitionMethod::kLoadAwareGreedy);
  return options;
}

void RunTransportJoin(benchmark::State& state, JoinTransport transport) {
  const auto& stream = CachedStream(DatasetPreset::kTweet, kRecords);
  DistributedJoinOptions options = TransportJoinOptions(stream);
  options.transport = transport;
  DistributedJoinResult result;
  for (auto _ : state) {
    if (transport == JoinTransport::kTcp) {
      const std::vector<uint16_t> ports = net::PickFreePorts(2);
      if (ports.empty()) {
        state.SkipWithError("no localhost sockets available");
        return;
      }
      options.cluster = "127.0.0.1:" + std::to_string(ports[0]) + ",127.0.0.1:" +
                        std::to_string(ports[1]);
      DistributedJoinOptions worker_options = options;
      worker_options.rank = 1;
      std::thread worker(
          [worker_options] { RunDistributedJoin({}, worker_options); });
      options.rank = 0;
      result = RunDistributedJoin(stream, options);
      worker.join();
    } else {
      result = RunDistributedJoin(stream, options);
    }
  }
  ReportJoinResult(state, result);
}

void BM_JoinInproc(benchmark::State& state) {
  RunTransportJoin(state, JoinTransport::kInproc);
}
void BM_JoinLoopback(benchmark::State& state) {
  RunTransportJoin(state, JoinTransport::kLoopback);
}
void BM_JoinTcpLocalhost(benchmark::State& state) {
  RunTransportJoin(state, JoinTransport::kTcp);
}

BENCHMARK(BM_WireEncodeFrames);
BENCHMARK(BM_WireParseFrames);
BENCHMARK(BM_JoinInproc)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_JoinLoopback)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_JoinTcpLocalhost)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
