// docs/INTERNALS.md §9/§11 — what the real wire costs, per codec. The
// encode and parse micro-benches use the SAME denominators — tuples per
// second via items, wire bytes per second via bytes, both counted against
// the identical frame buffer — so the two axes are directly comparable
// (an earlier revision compared parse MB/s of wire bytes against encode
// tuples/s of logical records, which manufactured a 7x "asymmetry").
// Parse runs the production zero-copy path: bytes land in a pooled frame
// arena (the copy is part of the measured work, exactly as in the TCP
// reader) and decoded records borrow token storage from it.
//
// Per-codec counters:
//   bytes_per_tuple  — wire bytes / tuple for this codec
//   wire_ratio       — this codec's bytes-on-wire / raw codec's bytes
//
// Macro-benches run the identical join over the three transports: inproc
// (pointer-passing queues), loopback (every cross-worker tuple
// wire-encoded and re-parsed in process, per codec), and tcp (two ranks
// over localhost sockets, worker rank on a thread). The inproc → loopback
// gap is pure serialization/framing; loopback → tcp adds syscalls and the
// kernel loopback path. remote_byte_cost_ns is 0 here: the usual simulated
// per-byte charge would double-count exactly the cost this bench measures
// for real.

#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/frame_arena.h"
#include "net/transport.h"
#include "net/wire.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 20000;
constexpr int kJoiners = 8;
constexpr size_t kFrameBatch = 32;

std::vector<stream::Envelope> DispatcherBatch(const std::vector<RecordPtr>& stream) {
  std::vector<stream::Envelope> batch;
  for (size_t i = 0; i < kFrameBatch; ++i) {
    const RecordPtr& r = stream[i % stream.size()];
    stream::Envelope e;
    e.tuple = stream::MakeTuple(std::shared_ptr<const void>(r), int64_t{3},
                                static_cast<int64_t>(1000 + i));
    e.tuple.set_payload_bytes(r->SerializedBytes());
    e.source_task = 1;
    e.link_seq = i + 1;
    batch.push_back(std::move(e));
  }
  return batch;
}

std::string EncodedBatch(net::WireCodec wire, const net::PayloadCodec& codec,
                         const std::vector<stream::Envelope>& batch) {
  std::string bytes;
  net::AppendEnvelopeFrames(wire, 2, batch, &codec, &bytes);
  return bytes;
}

void ReportWireCounters(benchmark::State& state, net::WireCodec wire,
                        const net::PayloadCodec& codec,
                        const std::vector<stream::Envelope>& batch,
                        size_t wire_bytes) {
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kFrameBatch));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * wire_bytes));
  state.counters["bytes_per_tuple"] =
      static_cast<double>(wire_bytes) / static_cast<double>(kFrameBatch);
  const size_t raw_bytes = wire == net::WireCodec::kRaw
                               ? wire_bytes
                               : EncodedBatch(net::WireCodec::kRaw, codec, batch).size();
  state.counters["wire_ratio"] =
      static_cast<double>(wire_bytes) / static_cast<double>(raw_bytes);
}

void BM_WireEncodeFrames(benchmark::State& state, net::WireCodec wire) {
  const net::PayloadCodec codec = RecordWireCodec();
  const auto batch = DispatcherBatch(CachedStream(DatasetPreset::kTweet, 4096));
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    net::AppendEnvelopeFrames(wire, 2, batch, &codec, &bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  ReportWireCounters(state, wire, codec, batch, bytes.size());
}

void BM_WireParseFrames(benchmark::State& state, net::WireCodec wire) {
  const net::PayloadCodec codec = RecordWireCodec();
  const auto batch = DispatcherBatch(CachedStream(DatasetPreset::kTweet, 4096));
  const std::string bytes = EncodedBatch(wire, codec, batch);
  net::FrameArenaPool pool(8);
  net::Frame frame;  // reused: ParseFrame keeps envelope capacity across frames
  for (auto _ : state) {
    // Production receive path: land the bytes in a pooled arena (that copy
    // is real per-frame work in the TCP reader), then parse zero-copy.
    auto arena = pool.Acquire();
    arena->bytes() = bytes;
    const char* data = arena->bytes().data();
    size_t pos = 0;
    while (pos < bytes.size()) {
      size_t consumed = 0;
      std::string error;
      if (net::ParseFrame(data + pos, bytes.size() - pos, &codec,
                          net::kDefaultMaxFrameBytes, &frame, &consumed, &error,
                          arena) != net::ParseStatus::kFrame) {
        state.SkipWithError("parse failed");
        return;
      }
      pos += consumed;
      benchmark::DoNotOptimize(frame.envelopes.data());
    }
  }
  ReportWireCounters(state, wire, codec, batch, bytes.size());
}

DistributedJoinOptions TransportJoinOptions(const std::vector<RecordPtr>& stream) {
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.remote_byte_cost_ns = 0.0;  // measure the real cost, not the model
  options.num_workers = 2;
  options.length_partition = PlanLengthPartition(stream, options.sim, kJoiners,
                                                 PartitionMethod::kLoadAwareGreedy);
  return options;
}

void RunTransportJoin(benchmark::State& state, JoinTransport transport,
                      net::WireCodec wire) {
  const auto& stream = CachedStream(DatasetPreset::kTweet, kRecords);
  DistributedJoinOptions options = TransportJoinOptions(stream);
  options.transport = transport;
  options.wire_codec = wire;
  DistributedJoinResult result;
  for (auto _ : state) {
    if (transport == JoinTransport::kTcp) {
      const std::vector<uint16_t> ports = net::PickFreePorts(2);
      if (ports.empty()) {
        state.SkipWithError("no localhost sockets available");
        return;
      }
      options.cluster = "127.0.0.1:" + std::to_string(ports[0]) + ",127.0.0.1:" +
                        std::to_string(ports[1]);
      DistributedJoinOptions worker_options = options;
      worker_options.rank = 1;
      std::thread worker(
          [worker_options] { RunDistributedJoin({}, worker_options); });
      options.rank = 0;
      result = RunDistributedJoin(stream, options);
      worker.join();
    } else {
      result = RunDistributedJoin(stream, options);
    }
  }
  ReportJoinResult(state, result);
}

void BM_JoinInproc(benchmark::State& state) {
  RunTransportJoin(state, JoinTransport::kInproc, net::WireCodec::kDelta);
}
void BM_JoinLoopback(benchmark::State& state, net::WireCodec wire) {
  RunTransportJoin(state, JoinTransport::kLoopback, wire);
}
void BM_JoinTcpLocalhost(benchmark::State& state) {
  RunTransportJoin(state, JoinTransport::kTcp, net::WireCodec::kDelta);
}

BENCHMARK_CAPTURE(BM_WireEncodeFrames, raw, net::WireCodec::kRaw);
BENCHMARK_CAPTURE(BM_WireEncodeFrames, delta, net::WireCodec::kDelta);
BENCHMARK_CAPTURE(BM_WireEncodeFrames, delta_lz, net::WireCodec::kDeltaLz);
BENCHMARK_CAPTURE(BM_WireParseFrames, raw, net::WireCodec::kRaw);
BENCHMARK_CAPTURE(BM_WireParseFrames, delta, net::WireCodec::kDelta);
BENCHMARK_CAPTURE(BM_WireParseFrames, delta_lz, net::WireCodec::kDeltaLz);
BENCHMARK(BM_JoinInproc)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK_CAPTURE(BM_JoinLoopback, raw, net::WireCodec::kRaw)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK_CAPTURE(BM_JoinLoopback, delta, net::WireCodec::kDelta)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK_CAPTURE(BM_JoinLoopback, delta_lz, net::WireCodec::kDeltaLz)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_JoinTcpLocalhost)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
