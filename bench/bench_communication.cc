// Experiment E4 — communication cost vs threshold per strategy. The
// length-based scheme stores each record once (replication 1.0) and its
// probe fan-out shrinks as the threshold rises; prefix-based replication
// grows with prefix length (lower thresholds), broadcast always pays k
// messages per record.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 20000;
constexpr int kJoiners = 8;

void RunComm(benchmark::State& state, DistributionStrategy strategy) {
  const int64_t threshold = state.range(0);
  const auto& stream = CachedStream(DatasetPreset::kTweet, kRecords);
  DistributedJoinOptions options = BaseJoinOptions(threshold, kJoiners);
  options.strategy = strategy;
  if (strategy == DistributionStrategy::kLengthBased) {
    options.length_partition = PlanLengthPartition(
        stream, options.sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  }
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  ReportJoinResult(state, result);
  state.counters["msgs_per_record"] =
      static_cast<double>(result.dispatch_messages) / static_cast<double>(kRecords);
  state.counters["bytes_per_record"] =
      static_cast<double>(result.dispatch_bytes) / static_cast<double>(kRecords);
  state.counters["remote_bytes_per_record"] =
      static_cast<double>(result.remote_bytes) / static_cast<double>(kRecords);
}

void BM_LengthComm(benchmark::State& state) {
  RunComm(state, DistributionStrategy::kLengthBased);
}
void BM_PrefixComm(benchmark::State& state) {
  RunComm(state, DistributionStrategy::kPrefixBased);
}
void BM_BroadcastComm(benchmark::State& state) {
  RunComm(state, DistributionStrategy::kBroadcast);
}
void BM_ReplicatedComm(benchmark::State& state) {
  RunComm(state, DistributionStrategy::kReplicated);
}

BENCHMARK(BM_LengthComm)
    ->Arg(600)->Arg(700)->Arg(800)->Arg(900)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_PrefixComm)
    ->Arg(600)->Arg(700)->Arg(800)->Arg(900)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_BroadcastComm)
    ->Arg(600)->Arg(700)->Arg(800)->Arg(900)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_ReplicatedComm)
    ->Arg(600)->Arg(700)->Arg(800)->Arg(900)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
