// Experiment E7 — batch verification via token diffs vs individual
// (reconstruct-and-merge) verification inside the bundle joiner. Sharing
// the pivot verification across members wins more as bundles grow (higher
// duplicate density, looser diff cap).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/bundle_joiner.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 30000;

void RunVerification(benchmark::State& state, bool batch_verify) {
  const double dup_fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto& stream = CachedDupStream(dup_fraction, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  BundleJoinerOptions options;
  options.batch_verify = batch_verify;
  uint64_t sink = 0;
  std::unique_ptr<BundleJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<BundleJoiner>(sim, WindowSpec::ByCount(20000), options);
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  const JoinerStats& s = joiner->stats();
  state.SetItemsProcessed(static_cast<int64_t>(kRecords) * state.iterations());
  state.counters["merge_steps"] = static_cast<double>(s.verify.merge_steps);
  state.counters["results"] = static_cast<double>(s.results);
  state.counters["batch_accepts"] = static_cast<double>(s.batch_accepts);
  state.counters["batch_rejects"] = static_cast<double>(s.batch_rejects);
  state.counters["diff_resolutions"] = static_cast<double>(s.member_diff_resolutions);
  state.counters["avg_bundle_size"] =
      joiner->BundleCount() > 0 ? static_cast<double>(joiner->StoredCount()) /
                                      static_cast<double>(joiner->BundleCount())
                                : 0.0;
}

void BM_BatchVerification(benchmark::State& state) { RunVerification(state, true); }
void BM_IndividualVerification(benchmark::State& state) { RunVerification(state, false); }

BENCHMARK(BM_BatchVerification)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndividualVerification)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Unit(benchmark::kMillisecond);

// The diff cap controls how aggressive bundling is: sweep max_diff at a
// fixed duplicate density.
void BM_MaxDiffSweep(benchmark::State& state) {
  const auto& stream = CachedDupStream(0.6, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  BundleJoinerOptions options;
  options.max_diff = static_cast<size_t>(state.range(0));
  uint64_t sink = 0;
  std::unique_ptr<BundleJoiner> joiner;
  for (auto _ : state) {
    joiner = std::make_unique<BundleJoiner>(sim, WindowSpec::ByCount(20000), options);
    for (const RecordPtr& r : stream) {
      joiner->Process(r, true, true, [&sink](const ResultPair&) { ++sink; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.counters["avg_bundle_size"] =
      joiner->BundleCount() > 0 ? static_cast<double>(joiner->StoredCount()) /
                                      static_cast<double>(joiner->BundleCount())
                                : 0.0;
  state.counters["merge_steps"] = static_cast<double>(joiner->stats().verify.merge_steps);
}

BENCHMARK(BM_MaxDiffSweep)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
