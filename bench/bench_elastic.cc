// Elastic scaling scenario (docs/INTERNALS.md §12) — the cost of live
// state migration. BM_Static4 is the apples-to-apples baseline (supervised,
// like every elastic run, but never migrating); BM_Autoscale242 runs the
// scripted 2→4→2 scenario: 4 joiners start packed on 2 workers, spread to
// 4 mid-stream, lose worker 3 to a scripted crash, and pack back down to 2
// — with the result count identical to the static run (the byte-level
// equality is proven in tests/migration_test.cc; the bench reports the
// throughput and state-shipping cost of the same schedule).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 40000;

DistributedJoinOptions ElasticBase() {
  DistributedJoinOptions options = BaseJoinOptions(800, 4);
  const auto& stream = CachedStream(DatasetPreset::kTweet, kRecords);
  options.length_partition =
      PlanLengthPartition(stream, options.sim, options.num_joiners,
                          PartitionMethod::kLoadAwareGreedy);
  options.num_workers = 4;
  options.supervise = true;  // elastic implies supervision; match it
  options.supervision.checkpoint_interval = 1024;
  options.supervision.initial_backoff_micros = 50;
  options.supervision.max_backoff_micros = 1000;
  return options;
}

void BM_Static4(benchmark::State& state) {
  const auto& stream = CachedStream(DatasetPreset::kTweet, kRecords);
  const DistributedJoinOptions options = ElasticBase();
  DistributedJoinResult result;
  for (auto _ : state) result = RunDistributedJoin(stream, options);
  ReportJoinResult(state, result);
  state.counters["migrations"] = static_cast<double>(result.migrations);
}
BENCHMARK(BM_Static4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Autoscale242(benchmark::State& state) {
  const auto& stream = CachedStream(DatasetPreset::kTweet, kRecords);
  DistributedJoinOptions options = ElasticBase();
  options.elastic = true;
  options.elastic_initial_workers = 2;
  options.elastic_interval_micros = 1'000'000'000;  // scripted, not load-driven
  options.fault_script =
      "migrate:joiner:2->2@6000; migrate:joiner:3->3@6000;"
      " kill_worker:3@20000;"
      " migrate:joiner:2->0@28000; migrate:joiner:3->1@28000";
  DistributedJoinResult result;
  for (auto _ : state) result = RunDistributedJoin(stream, options);
  ReportJoinResult(state, result);
  state.counters["migrations"] = static_cast<double>(result.migrations);
  state.counters["migration_KB"] = static_cast<double>(result.migration_bytes) / 1e3;
  state.counters["restarts"] = static_cast<double>(result.restarts);
}
BENCHMARK(BM_Autoscale242)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
