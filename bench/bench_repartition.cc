// Experiment E12 (extension) — adaptive repartitioning under drift. A
// static length partition is planned from the stream's head; the workload
// then drifts (record lengths grow 3×). We compare, chunk by chunk,
//   static   — keep the initial partition forever;
//   adaptive — ask the RepartitionAdvisor before each chunk and adopt its
//              plan when recommended (applied at chunk boundaries, standing
//              in for window-aligned state migration).
// Reported per chunk: measured joiner busy imbalance and the advisor's
// migration cost when it fires.

#include <algorithm>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/repartition.h"
#include "workload/drift.h"

namespace dssj::bench {
namespace {

constexpr size_t kChunk = 10000;
constexpr int kChunks = 5;
constexpr int kJoiners = 8;

std::vector<RecordPtr> DriftStream() {
  DriftOptions options;
  options.base = PresetOptions(DatasetPreset::kTweet);
  options.base.seed = 1234;
  options.end_length_mean = options.base.length.mean * 3.0;
  options.drift_records = kChunk * kChunks;
  return DriftingGenerator(options).Generate(kChunk * kChunks);
}

double MeasuredImbalance(const DistributedJoinResult& result) {
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : result.joiner_busy_micros) {
    sum += b;
    worst = std::max(worst, b);
  }
  return sum > 0 ? static_cast<double>(worst) * kJoiners / static_cast<double>(sum) : 0.0;
}

void RunDriftBench(benchmark::State& state, bool adaptive) {
  static const std::vector<RecordPtr> stream = DriftStream();
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);

  double final_imbalance = 0.0;
  double worst_imbalance = 0.0;
  uint64_t replans = 0;
  double moved_fraction_total = 0.0;

  for (auto _ : state) {
    std::vector<RecordPtr> head(stream.begin(), stream.begin() + kChunk);
    LengthPartition partition =
        PlanLengthPartition(head, sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
    // Chunk boundaries are window boundaries here, so migrations are cheap;
    // relax the default veto accordingly.
    RepartitionPolicy policy;
    policy.min_improvement = 1.1;
    policy.max_move_fraction = 1.0;
    RepartitionAdvisor advisor(sim, kJoiners, policy, /*half_life_records=*/5000);
    replans = 0;
    moved_fraction_total = 0.0;
    worst_imbalance = 0.0;

    for (int chunk = 0; chunk < kChunks; ++chunk) {
      const std::vector<RecordPtr> slice(stream.begin() + chunk * kChunk,
                                         stream.begin() + (chunk + 1) * kChunk);
      if (adaptive && chunk > 0) {
        LengthHistogram stored;
        stored.AddRecords(slice);  // window ≈ current chunk
        const MigrationPlan plan = advisor.Evaluate(partition, stored);
        if (plan.recommended) {
          partition = plan.new_partition;
          ++replans;
          moved_fraction_total += plan.move_fraction;
        }
      }
      for (const RecordPtr& r : slice) advisor.ObserveLength(r->size());

      DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
      options.strategy = DistributionStrategy::kLengthBased;
      options.length_partition = partition;
      options.window = WindowSpec::ByCount(kChunk);
      const DistributedJoinResult result = RunDistributedJoin(slice, options);
      final_imbalance = MeasuredImbalance(result);
      worst_imbalance = std::max(worst_imbalance, final_imbalance);
    }
  }
  state.counters["final_imbalance"] = final_imbalance;
  state.counters["worst_imbalance"] = worst_imbalance;
  state.counters["replans"] = static_cast<double>(replans);
  state.counters["moved_fraction_total"] = moved_fraction_total;
}

void BM_StaticPartitionUnderDrift(benchmark::State& state) { RunDriftBench(state, false); }
void BM_AdaptivePartitionUnderDrift(benchmark::State& state) { RunDriftBench(state, true); }

// Live epoch-based adaptation (AdaptiveLengthRouter): one continuous run
// over the whole drifting stream; the dispatcher replans on the fly, no
// state moves, probes temporarily fan out over live epochs.
void BM_LiveAdaptiveUnderDrift(benchmark::State& state) {
  static const std::vector<RecordPtr> stream = DriftStream();
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByTime(static_cast<int64_t>(kChunk) * 1000);
  options.adaptive = true;
  options.adaptive_options.replan_interval = kChunk / 2;
  options.adaptive_options.half_life_records = kChunk / 2;
  options.adaptive_options.policy.min_improvement = 1.1;
  const std::vector<RecordPtr> head(stream.begin(), stream.begin() + kChunk);
  options.length_partition =
      PlanLengthPartition(head, sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  ReportJoinResult(state, result);
  state.counters["replans"] = static_cast<double>(result.router_replans);
  state.counters["live_epochs"] = static_cast<double>(result.router_live_epochs);
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : result.joiner_busy_micros) {
    sum += b;
    worst = std::max(worst, b);
  }
  state.counters["overall_imbalance"] =
      sum > 0 ? static_cast<double>(worst) * kJoiners / static_cast<double>(sum) : 0.0;
}

// Same continuous run without adaptation, for comparison.
void BM_LiveStaticUnderDrift(benchmark::State& state) {
  static const std::vector<RecordPtr> stream = DriftStream();
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByTime(static_cast<int64_t>(kChunk) * 1000);
  const std::vector<RecordPtr> head(stream.begin(), stream.begin() + kChunk);
  options.length_partition =
      PlanLengthPartition(head, sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  ReportJoinResult(state, result);
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : result.joiner_busy_micros) {
    sum += b;
    worst = std::max(worst, b);
  }
  state.counters["overall_imbalance"] =
      sum > 0 ? static_cast<double>(worst) * kJoiners / static_cast<double>(sum) : 0.0;
}

BENCHMARK(BM_StaticPartitionUnderDrift)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_AdaptivePartitionUnderDrift)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_LiveStaticUnderDrift)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_LiveAdaptiveUnderDrift)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
