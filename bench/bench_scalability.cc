// Experiment E3 — throughput vs joiner parallelism (the paper's
// scalability figure). Length-based distribution scales near-linearly in
// the cluster model (rec_per_s_scaled) because its bottleneck joiner load
// shrinks with k; broadcast flattens because every joiner probes every
// record regardless of k.
//
// Run on the ENRON-like workload: long records make per-record join work
// dominate fixed per-message overhead, which is the regime of the paper's
// cluster evaluation (on short-record workloads dispatch overhead caps
// scaling earlier — bench_throughput_threshold shows both datasets).

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 20000;

void RunScaling(benchmark::State& state, DistributionStrategy strategy) {
  const int joiners = static_cast<int>(state.range(0));
  const auto& stream = CachedStream(DatasetPreset::kEnron, kRecords);
  DistributedJoinOptions options = BaseJoinOptions(800, joiners);
  options.strategy = strategy;
  options.window = WindowSpec::ByCount(15000);
  // Scale the dispatcher tier with the cluster (as a Storm deployment
  // would); otherwise one dispatcher's serialization work caps every
  // strategy at high k. The multi-dispatcher at-most-once caveat is
  // quantified in E10.
  options.num_dispatchers = std::max(1, joiners / 8);
  if (strategy == DistributionStrategy::kLengthBased) {
    options.length_partition =
        PlanLengthPartition(stream, options.sim, joiners, PartitionMethod::kLoadAwareGreedy);
  }
  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(stream, options);
  }
  ReportJoinResult(state, result);
  // Per-joiner busy balance: bottleneck / average (1.0 = perfect).
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : result.joiner_busy_micros) {
    sum += b;
    worst = std::max(worst, b);
  }
  state.counters["busy_imbalance"] =
      sum > 0 ? static_cast<double>(worst) * joiners / static_cast<double>(sum) : 0.0;
}

void BM_LengthScaling(benchmark::State& state) {
  RunScaling(state, DistributionStrategy::kLengthBased);
}
void BM_PrefixScaling(benchmark::State& state) {
  RunScaling(state, DistributionStrategy::kPrefixBased);
}
void BM_BroadcastScaling(benchmark::State& state) {
  RunScaling(state, DistributionStrategy::kBroadcast);
}

BENCHMARK(BM_LengthScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_PrefixScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_BroadcastScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
