// Experiment E5 — quality of the length partitioning schemes. For each
// method we report (a) the cost model's predicted bottleneck/mean imbalance
// and (b) the *measured* busy-time imbalance of an actual run. Load-aware
// partitioning should sit near 1.0; uniform splits collapse under skewed
// length distributions.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/partition.h"

namespace dssj::bench {
namespace {

constexpr size_t kRecords = 30000;
constexpr int kJoiners = 8;

PartitionMethod MethodFor(int64_t arg) {
  switch (arg) {
    case 0:
      return PartitionMethod::kLoadAwareGreedy;
    case 1:
      return PartitionMethod::kLoadAwareDP;
    case 2:
      return PartitionMethod::kLoadAwareFull;
    case 3:
      return PartitionMethod::kUniform;
    default:
      return PartitionMethod::kEqualFrequency;
  }
}

void BM_PartitionQuality(benchmark::State& state) {
  const PartitionMethod method = MethodFor(state.range(0));
  // ENRON-like lengths are the stress case: long tail up to 1500 tokens.
  const auto& stream = CachedStream(DatasetPreset::kEnron, kRecords);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);

  LengthPartition partition;
  for (auto _ : state) {
    partition = PlanLengthPartition(stream, sim, kJoiners, method);
    benchmark::DoNotOptimize(partition);
  }
  state.SetLabel(PartitionMethodName(method));

  // Model-predicted imbalance.
  LengthHistogram histogram;
  histogram.AddRecords(stream);
  const auto load = ComputePerLengthLoad(histogram, sim);
  const double bottleneck = BottleneckLoad(partition, load);
  const double mean = MeanLoad(partition, load);
  state.counters["predicted_imbalance"] = mean > 0 ? bottleneck / mean : 0.0;

  // Measured imbalance of a real run under this partition.
  DistributedJoinOptions options = BaseJoinOptions(800, kJoiners);
  options.strategy = DistributionStrategy::kLengthBased;
  options.length_partition = partition;
  options.window = WindowSpec::ByCount(15000);
  const DistributedJoinResult result = RunDistributedJoin(stream, options);
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : result.joiner_busy_micros) {
    sum += b;
    worst = std::max(worst, b);
  }
  state.counters["measured_imbalance"] =
      sum > 0 ? static_cast<double>(worst) * kJoiners / static_cast<double>(sum) : 0.0;
  state.counters["rec_per_s_scaled"] = result.scaled_throughput_rps;
}

BENCHMARK(BM_PartitionQuality)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// Planning cost itself (the paper argues the planner is cheap): time to
// build the load model + partition from a sample, per sample size.
void BM_PlannerCost(benchmark::State& state) {
  const size_t sample_size = static_cast<size_t>(state.range(0));
  const auto& stream = CachedStream(DatasetPreset::kEnron, kRecords);
  const std::vector<RecordPtr> sample(stream.begin(),
                                      stream.begin() + std::min(sample_size, stream.size()));
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  for (auto _ : state) {
    auto partition =
        PlanLengthPartition(sample, sim, kJoiners, PartitionMethod::kLoadAwareGreedy);
    benchmark::DoNotOptimize(partition);
  }
}

BENCHMARK(BM_PlannerCost)->Arg(1000)->Arg(10000)->Arg(30000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
