// Experiment E9 — per-record processing latency vs arrival rate. The
// source is paced to the target rate; latency is measured from source emit
// to the joiner finishing the probe. Below saturation latency stays flat;
// past it queues fill (backpressure) and p99 explodes — the paper's classic
// hockey-stick figure.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dssj::bench {
namespace {

void BM_LatencyVsRate(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  // One second of traffic at the target rate (bounded for high rates).
  const size_t n = std::min<size_t>(static_cast<size_t>(rate), 60000);
  const auto& stream = CachedStream(DatasetPreset::kTweet, 60000);
  const std::vector<RecordPtr> slice(stream.begin(), stream.begin() + n);

  DistributedJoinOptions options = BaseJoinOptions(800, 4);
  options.strategy = DistributionStrategy::kLengthBased;
  options.window = WindowSpec::ByCount(20000);
  options.length_partition =
      PlanLengthPartition(slice, options.sim, 4, PartitionMethod::kLoadAwareGreedy);
  options.arrival_rate_per_sec = rate;

  DistributedJoinResult result;
  for (auto _ : state) {
    result = RunDistributedJoin(slice, options);
  }
  ReportJoinResult(state, result);
  state.counters["offered_rate"] = rate;
  state.counters["achieved_rate"] = result.throughput_rps;
  state.counters["lat_mean_us"] = result.latency.mean_us;
  state.counters["lat_max_us"] = static_cast<double>(result.latency.max_us);
}

BENCHMARK(BM_LatencyVsRate)
    ->Arg(2000)->Arg(5000)->Arg(10000)->Arg(20000)->Arg(50000)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace dssj::bench

BENCHMARK_MAIN();
